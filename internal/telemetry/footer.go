package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"eswitch/internal/hist"
)

// FooterConfig shapes the stats footer around the run's static context —
// everything numeric comes out of the registry, so the footer and the
// /metrics endpoint can never disagree.
type FooterConfig struct {
	// RealIO selects the per-port backend lines over the generator summary.
	RealIO bool
	// Injected is the generator's producer-side packet count (the producer
	// is the main goroutine, not the switch, so it isn't a switch metric).
	Injected uint64
	// TxPolicy names the full-TX-ring policy for the tx line.
	TxPolicy string
	// PortDetail renders a port's static context ("[ring, link up]"); nil
	// omits the bracket.
	PortDetail func(port uint64) string
	// Slowpath, FlowCache and Megaflow gate their sections (armed features
	// only — the registry reports zeros either way).
	Slowpath  bool
	FlowCache bool
	Megaflow  bool
	// Latency gates the burst/punt latency lines (latency sampling armed).
	Latency bool
}

// footerView indexes one Gather pass for the renderer.
type footerView struct {
	scalar map[string]float64
	ports  map[string]map[uint64]float64 // family -> port -> value
	hists  map[string]*hist.Snapshot
}

func gatherFooter(r *Registry) *footerView {
	v := &footerView{
		scalar: map[string]float64{},
		ports:  map[string]map[uint64]float64{},
		hists:  map[string]*hist.Snapshot{},
	}
	for _, p := range r.Gather() {
		if p.Hist != nil {
			if h := v.hists[p.Family]; h != nil {
				h.AddSnapshot(p.Hist)
			} else {
				cp := *p.Hist
				v.hists[p.Family] = &cp
			}
			continue
		}
		port, isPort := uint64(0), false
		for _, l := range p.Labels {
			if l.Name == "port" {
				if n, err := strconv.ParseUint(l.Value, 10, 64); err == nil {
					port, isPort = n, true
				}
			}
		}
		if isPort {
			m := v.ports[p.Family]
			if m == nil {
				m = map[uint64]float64{}
				v.ports[p.Family] = m
			}
			m[port] += p.Value
		}
		v.scalar[p.Family] += p.Value
	}
	return v
}

func (v *footerView) u(family string) uint64 { return uint64(v.scalar[family]) }

func (v *footerView) port(family string, port uint64) uint64 {
	return uint64(v.ports[family][port])
}

func pct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// quantiles renders a histogram as p50/p99/mean in microseconds.
func quantiles(h *hist.Snapshot) string {
	if h == nil || h.Count() == 0 {
		return "no samples"
	}
	return fmt.Sprintf("p50 %s, p99 %s, mean %s over %d samples",
		usec(h.Quantile(0.50)), usec(h.Quantile(0.99)), usec(uint64(h.Mean())), h.Count())
}

func usec(ns uint64) string {
	return fmt.Sprintf("%.1fus", float64(ns)/1e3)
}

// RenderFooter writes the eswitchd end-of-run stats footer from the
// registry: the single renderer behind every run mode (generator, trace
// replay, real I/O), reading the exact samples /metrics serves.
func RenderFooter(w io.Writer, r *Registry, cfg FooterConfig) {
	v := gatherFooter(r)

	if cfg.RealIO {
		fmt.Fprintln(w)
		ports := make([]uint64, 0, len(v.ports["eswitch_port_rx_packets_total"]))
		for p := range v.ports["eswitch_port_rx_packets_total"] {
			ports = append(ports, p)
		}
		sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
		for _, p := range ports {
			detail := ""
			if cfg.PortDetail != nil {
				detail = " " + cfg.PortDetail(p)
			}
			fmt.Fprintf(w, "port %d:    %d rx, %d tx (%d rx drops, %d tx drops)%s\n",
				p,
				v.port("eswitch_port_rx_packets_total", p), v.port("eswitch_port_tx_packets_total", p),
				v.port("eswitch_port_rx_drops_total", p), v.port("eswitch_port_tx_drops_total", p),
				detail)
		}
	} else {
		fmt.Fprintf(w, "\ninjected:  %d packets (%d rx drops, %d tx drops)\n",
			cfg.Injected, v.u("eswitch_port_rx_drops_total"), v.u("eswitch_port_tx_drops_total"))
	}
	fmt.Fprintf(w, "processed: %d packets (%d forwarded, %d dropped, %d to controller)\n",
		v.u("eswitch_worker_processed_packets_total"), v.u("eswitch_worker_forwarded_packets_total"),
		v.u("eswitch_worker_dropped_packets_total"), v.u("eswitch_worker_to_controller_packets_total"))
	fmt.Fprintf(w, "tx:        policy %s, %d retries, %d backpressure drops\n",
		cfg.TxPolicy, v.u("eswitch_tx_retries_total"), v.u("eswitch_tx_backpressure_drops_total"))
	fmt.Fprintf(w, "ports:     %d down, %d flapping; %d link transitions, %d reopens (%d failed), %d worker stalls\n",
		v.u("eswitch_ports_down"), v.u("eswitch_ports_flapping"),
		v.u("eswitch_port_link_transitions_total"), v.u("eswitch_port_reopens_total"),
		v.u("eswitch_port_reopen_failures_total"), v.u("eswitch_worker_stalls_total"))
	if n := v.u("eswitch_datapath_panics_total"); n > 0 {
		fmt.Fprintf(w, "contained: %d datapath panics, %d frames quarantined\n",
			n, v.u("eswitch_quarantined_frames_total"))
	}
	if cfg.Slowpath {
		// Punts+PuntDrops+PuntSuppressed+PuntFiltered == ToCtrl: every
		// punted verdict is exactly one ring push attempt, a degraded-mode
		// suppression, or a storm-filter hit (WorkerStats.CheckInvariants).
		fmt.Fprintf(w, "slowpath:  %d punts queued, %d ring drops, %d suppressed (fail mode), %d storm-filtered, %d re-injected punts cut\n",
			v.u("eswitch_punts_queued_total"), v.u("eswitch_punt_ring_drops_total"),
			v.u("eswitch_punts_suppressed_total"), v.u("eswitch_punts_filtered_total"),
			v.u("eswitch_reinjected_punts_total"))
	}
	if cfg.FlowCache {
		hits, misses := v.u("eswitch_microflow_hits_total"), v.u("eswitch_microflow_misses_total")
		fmt.Fprintf(w, "flowcache: %d hits, %d misses (%d stale), %.1f%% hit rate\n",
			hits, misses, v.u("eswitch_microflow_stale_total"), pct(hits, hits+misses))
		fills, capacity := v.u("eswitch_microflow_fills_total"), v.u("eswitch_microflow_capacity_slots")
		if capacity > 0 {
			live := fills
			if live > capacity {
				live = capacity
			}
			fmt.Fprintf(w, "           %d installs (%d fills, %d victims), ~%.1f%% of %d slots filled\n",
				v.u("eswitch_microflow_installs_total"), fills, v.u("eswitch_microflow_victims_total"),
				pct(live, capacity), capacity)
		} else {
			fmt.Fprintf(w, "           %d installs (%d fills, %d victims)\n",
				v.u("eswitch_microflow_installs_total"), fills, v.u("eswitch_microflow_victims_total"))
		}
	}
	if cfg.Megaflow {
		mh, mm := v.u("eswitch_megaflow_hits_total"), v.u("eswitch_megaflow_misses_total")
		fmt.Fprintf(w, "megaflow:  %d hits, %d misses, %.1f%% of microflow misses short-circuited\n",
			mh, mm, pct(mh, mh+mm))
	}
	if cfg.Latency {
		fmt.Fprintf(w, "burst:     %s\n", quantiles(v.hists["eswitch_burst_duration_seconds"]))
		if cfg.Slowpath {
			fmt.Fprintf(w, "puntlat:   %s\n", quantiles(v.hists["eswitch_punt_latency_seconds"]))
		}
	}
	if n := v.u("eswitch_ipfix_messages_total"); n > 0 {
		fmt.Fprintf(w, "ipfix:     %d messages, %d flow records exported (%d sink errors)\n",
			n, v.u("eswitch_ipfix_records_total"), v.u("eswitch_ipfix_export_errors_total"))
	}
}
