package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving the registry in Prometheus text
// exposition format 0.0.4.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Scrape errors past the header are write errors on the client
		// connection — nothing useful to report server-side.
		_ = r.WriteText(w)
	})
}

// Mux returns the metrics mux: /metrics plus the /debug/pprof profiling
// surface.  A private mux, not http.DefaultServeMux, so importing this
// package never leaks profiling handlers into an application's own server.
func Mux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running metrics endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr and serves the registry's /metrics and /debug/pprof on a
// background goroutine.  The listener is bound synchronously so the caller
// learns the bind error (and the resolved address) immediately.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Mux(r)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the endpoint.
func (s *Server) Close() error { return s.srv.Close() }
