package telemetry

import (
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"eswitch/internal/core"
	"eswitch/internal/ipfix"
	"eswitch/internal/openflow"
)

// FlowSource is where the exporter samples per-flow counters.  The compiled
// datapath satisfies it: FlowSamples is the same locked off-path walk the
// lifecycle sweeper performs, so export and expiry observe flows
// identically and the worker hot path never notices either.
type FlowSource interface {
	FlowSamples(buf []core.FlowSample) []core.FlowSample
}

// Sink receives encoded IPFIX messages.
type Sink interface {
	Emit(msg []byte) error
	Close() error
}

// UDPSink emits each IPFIX message as one UDP datagram (the RFC 7011
// deployment default).
type UDPSink struct{ conn net.Conn }

// NewUDPSink dials addr ("host:port").
func NewUDPSink(addr string) (*UDPSink, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	return &UDPSink{conn: conn}, nil
}

func (s *UDPSink) Emit(msg []byte) error { _, err := s.conn.Write(msg); return err }
func (s *UDPSink) Close() error          { return s.conn.Close() }

// FileSink appends length-prefixed IPFIX messages to a file: each message is
// preceded by a 4-byte big-endian length so a reader can re-frame the stream
// (IPFIX message headers carry a length too; the prefix just makes framing
// recovery trivial).
type FileSink struct {
	mu sync.Mutex
	f  *os.File
}

// NewFileSink creates (truncating) the file at path.
func NewFileSink(path string) (*FileSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &FileSink{f: f}, nil
}

func (s *FileSink) Emit(msg []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var pfx [4]byte
	pfx[0] = byte(len(msg) >> 24)
	pfx[1] = byte(len(msg) >> 16)
	pfx[2] = byte(len(msg) >> 8)
	pfx[3] = byte(len(msg))
	if _, err := s.f.Write(pfx[:]); err != nil {
		return err
	}
	_, err := s.f.Write(msg)
	return err
}

func (s *FileSink) Close() error { return s.f.Close() }

// SplitFramed re-frames a FileSink byte stream into messages.
func SplitFramed(b []byte) ([][]byte, error) {
	var msgs [][]byte
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("telemetry: truncated frame prefix")
		}
		n := int(b[0])<<24 | int(b[1])<<16 | int(b[2])<<8 | int(b[3])
		if n < 0 || len(b) < 4+n {
			return nil, fmt.Errorf("telemetry: truncated frame (%d of %d bytes)", len(b)-4, n)
		}
		msgs = append(msgs, b[4:4+n])
		b = b[4+n:]
	}
	return msgs, nil
}

// MemorySink buffers emitted messages in memory (tests and the
// reconciliation experiment).
type MemorySink struct {
	mu   sync.Mutex
	msgs [][]byte
}

func (s *MemorySink) Emit(msg []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.msgs = append(s.msgs, append([]byte(nil), msg...))
	return nil
}

func (s *MemorySink) Close() error { return nil }

// Messages returns the emitted messages.
func (s *MemorySink) Messages() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]byte, len(s.msgs))
	copy(out, s.msgs)
	return out
}

// ParseSink builds a sink from a -flow-export style spec:
//
//	udp:host:port   IPFIX over UDP datagrams
//	file:path       length-prefixed IPFIX messages appended to a file
func ParseSink(spec string) (Sink, error) {
	switch {
	case strings.HasPrefix(spec, "udp:"):
		return NewUDPSink(strings.TrimPrefix(spec, "udp:"))
	case strings.HasPrefix(spec, "file:"):
		return NewFileSink(strings.TrimPrefix(spec, "file:"))
	default:
		return nil, fmt.Errorf("telemetry: unknown export sink %q (want udp:host:port or file:path)", spec)
	}
}

// ExporterConfig tunes the flow exporter.  Zero values take the defaults.
type ExporterConfig struct {
	// Domain is the IPFIX observation domain ID stamped on every message.
	Domain uint32
	// PollInterval is how often the flow table is sampled (default 1s).
	PollInterval time.Duration
	// ActiveTimeout forces an export of a still-active flow's accumulated
	// delta at least this often (default 30s), so long-lived flows appear
	// in the export stream before they end.
	ActiveTimeout time.Duration
	// IdleTimeout exports a flow's remaining delta once its counters stop
	// advancing for this long (default 10s).
	IdleTimeout time.Duration
}

func (c *ExporterConfig) defaults() {
	if c.PollInterval <= 0 {
		c.PollInterval = time.Second
	}
	if c.ActiveTimeout <= 0 {
		c.ActiveTimeout = 30 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 10 * time.Second
	}
}

// FlowTemplate is the exporter's IPFIX template: the flow's 5-tuple and
// ingress port (as matched by the flow entry; unmatched fields export as
// zero), delta counters, millisecond timestamps and the end reason.
func FlowTemplate() ipfix.Template {
	return ipfix.Template{ID: ipfix.MinTemplateID, Fields: []ipfix.FieldSpec{
		{ID: ipfix.IEIngressInterface, Length: 4},
		{ID: ipfix.IESourceIPv4Address, Length: 4},
		{ID: ipfix.IEDestinationIPv4Address, Length: 4},
		{ID: ipfix.IESourceTransportPort, Length: 2},
		{ID: ipfix.IEDestinationTransportPort, Length: 2},
		{ID: ipfix.IEProtocolIdentifier, Length: 1},
		{ID: ipfix.IEPacketDeltaCount, Length: 8},
		{ID: ipfix.IEOctetDeltaCount, Length: 8},
		{ID: ipfix.IEFlowStartMilliseconds, Length: 8},
		{ID: ipfix.IEFlowEndMilliseconds, Length: 8},
		{ID: ipfix.IEFlowEndReason, Length: 1},
	}}
}

// flowState is the exporter's per-flow-entry delta tracker, keyed on the
// entry's identity pointer (stable for the entry's lifetime, fresh across a
// replace — the same keying the lifecycle sweeper uses).
type flowState struct {
	firstSeen  time.Time
	lastActive time.Time // counters last advanced
	lastExport time.Time
	// cur mirrors the entry's running totals; exp is what has already been
	// exported, so cur-exp is the pending delta.
	curPackets, curBytes uint64
	expPackets, expBytes uint64
	// 5-tuple extracted from the entry's match (exact fields only).
	ingress      uint32
	srcIP, dstIP uint32
	sport, dport uint16
	proto        uint8
	seen         bool // mark/sweep against disappeared entries
}

// FlowExporter samples per-flow counters off the flow table and exports
// IPFIX flow records.  It is entirely off-path: each poll is one locked
// FlowSamples walk (the sweeper's cadence), encoding and sink I/O happen on
// the exporter goroutine.
type FlowExporter struct {
	src  FlowSource
	sink Sink
	cfg  ExporterConfig

	mu    sync.Mutex
	enc   *ipfix.Encoder
	tmpl  ipfix.Template
	state map[*openflow.FlowEntry]*flowState
	buf   []core.FlowSample
	rec   ipfix.RecordBuilder

	stop chan struct{}
	done chan struct{}

	messages atomic.Uint64
	records  atomic.Uint64
	errors   atomic.Uint64
	tracked  atomic.Uint64
}

// NewFlowExporter builds an exporter over src emitting to sink.  Call Start
// for the periodic loop, or Poll/Flush directly for caller-driven cadence.
func NewFlowExporter(src FlowSource, sink Sink, cfg ExporterConfig) *FlowExporter {
	cfg.defaults()
	return &FlowExporter{
		src:   src,
		sink:  sink,
		cfg:   cfg,
		enc:   ipfix.NewEncoder(cfg.Domain),
		tmpl:  FlowTemplate(),
		state: map[*openflow.FlowEntry]*flowState{},
	}
}

// Start launches the periodic poll loop.
func (e *FlowExporter) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stop != nil {
		return
	}
	e.stop = make(chan struct{})
	e.done = make(chan struct{})
	go e.loop(e.stop, e.done)
}

func (e *FlowExporter) loop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(e.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			e.Poll()
		}
	}
}

// Close stops the loop, exports every remaining delta with a forced-end
// reason, and closes the sink.
func (e *FlowExporter) Close() error {
	e.mu.Lock()
	stop, done := e.stop, e.done
	e.stop, e.done = nil, nil
	e.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	e.Flush()
	return e.sink.Close()
}

// Messages returns how many IPFIX messages were emitted.
func (e *FlowExporter) Messages() uint64 { return e.messages.Load() }

// Records returns how many flow data records were emitted.
func (e *FlowExporter) Records() uint64 { return e.records.Load() }

// Errors returns how many sink writes failed.
func (e *FlowExporter) Errors() uint64 { return e.errors.Load() }

// Tracked returns how many flow entries are currently tracked.
func (e *FlowExporter) Tracked() uint64 { return e.tracked.Load() }

// Poll samples the flow table once and exports whatever the active/idle
// timers say is due, plus the final deltas of entries that disappeared
// (expired, evicted or replaced) since the last poll.
func (e *FlowExporter) Poll() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.poll(time.Now())
}

// Flush exports every pending delta immediately (forced end), regardless of
// timers — shutdown and test cadence.
func (e *FlowExporter) Flush() {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := time.Now()
	e.buf = e.src.FlowSamples(e.buf)
	for _, s := range e.buf {
		st := e.track(s, now)
		st.curPackets, st.curBytes = s.Packets, s.Bytes
	}
	var recs []exportRecord
	for entry, st := range e.state {
		if st.curPackets > st.expPackets || st.curBytes > st.expBytes {
			recs = append(recs, e.makeRecord(st, now, ipfix.EndReasonForcedEnd))
		}
		delete(e.state, entry)
	}
	e.tracked.Store(0)
	e.emit(now, recs)
}

// exportRecord is one pending data record.
type exportRecord struct {
	st      *flowState
	pkts    uint64
	bytes   uint64
	end     time.Time
	reason  uint8
	ingress uint32
	srcIP   uint32
	dstIP   uint32
	sport   uint16
	dport   uint16
	proto   uint8
	start   time.Time
}

func (e *FlowExporter) makeRecord(st *flowState, end time.Time, reason uint8) exportRecord {
	r := exportRecord{
		st: st, reason: reason,
		pkts: st.curPackets - st.expPackets, bytes: st.curBytes - st.expBytes,
		start: st.firstSeen, end: end,
		ingress: st.ingress, srcIP: st.srcIP, dstIP: st.dstIP,
		sport: st.sport, dport: st.dport, proto: st.proto,
	}
	st.expPackets, st.expBytes = st.curPackets, st.curBytes
	st.lastExport = end
	return r
}

// track returns (creating if needed) the sample's delta state.
func (e *FlowExporter) track(s core.FlowSample, now time.Time) *flowState {
	st := e.state[s.Entry]
	if st == nil {
		st = &flowState{firstSeen: now, lastActive: now, lastExport: now}
		if s.Match != nil {
			if v, _, ok := s.Match.Get(openflow.FieldInPort); ok {
				st.ingress = uint32(v)
			}
			if v, _, ok := s.Match.Get(openflow.FieldIPSrc); ok {
				st.srcIP = uint32(v)
			}
			if v, _, ok := s.Match.Get(openflow.FieldIPDst); ok {
				st.dstIP = uint32(v)
			}
			if v, _, ok := s.Match.Get(openflow.FieldIPProto); ok {
				st.proto = uint8(v)
			}
			for _, f := range [...]openflow.Field{openflow.FieldTCPSrc, openflow.FieldUDPSrc, openflow.FieldSCTPSrc} {
				if v, _, ok := s.Match.Get(f); ok {
					st.sport = uint16(v)
				}
			}
			for _, f := range [...]openflow.Field{openflow.FieldTCPDst, openflow.FieldUDPDst, openflow.FieldSCTPDst} {
				if v, _, ok := s.Match.Get(f); ok {
					st.dport = uint16(v)
				}
			}
		}
		e.state[s.Entry] = st
	}
	st.seen = true
	return st
}

// poll is the timer-driven export pass (callers hold e.mu).
func (e *FlowExporter) poll(now time.Time) {
	e.buf = e.src.FlowSamples(e.buf)
	for _, st := range e.state {
		st.seen = false
	}
	var recs []exportRecord
	for _, s := range e.buf {
		st := e.track(s, now)
		if s.Packets > st.curPackets || s.Bytes > st.curBytes {
			st.lastActive = now
		}
		st.curPackets, st.curBytes = s.Packets, s.Bytes
		pending := st.curPackets > st.expPackets || st.curBytes > st.expBytes
		switch {
		case pending && now.Sub(st.lastActive) >= e.cfg.IdleTimeout:
			recs = append(recs, e.makeRecord(st, st.lastActive, ipfix.EndReasonIdleTimeout))
		case pending && now.Sub(st.lastExport) >= e.cfg.ActiveTimeout:
			recs = append(recs, e.makeRecord(st, now, ipfix.EndReasonActiveTimeout))
		}
	}
	// Entries gone from the table (expired, evicted, replaced): export the
	// remaining delta and forget them.
	for entry, st := range e.state {
		if st.seen {
			continue
		}
		if st.curPackets > st.expPackets || st.curBytes > st.expBytes {
			recs = append(recs, e.makeRecord(st, now, ipfix.EndReasonEndOfFlow))
		}
		delete(e.state, entry)
	}
	e.tracked.Store(uint64(len(e.state)))
	e.emit(now, recs)
}

// emit encodes recs into one IPFIX message (template set included in every
// message, so any observer can decode from any point in the stream) and
// writes it to the sink.  No records → no message.
func (e *FlowExporter) emit(now time.Time, recs []exportRecord) {
	if len(recs) == 0 {
		return
	}
	e.enc.Begin(uint32(now.Unix()))
	e.enc.Templates(e.tmpl)
	e.enc.BeginDataSet(e.tmpl)
	for _, r := range recs {
		e.rec.Reset()
		e.rec.Uint32(r.ingress).
			Uint32(r.srcIP).Uint32(r.dstIP).
			Uint16(r.sport).Uint16(r.dport).
			Uint8(r.proto).
			Uint64(r.pkts).Uint64(r.bytes).
			Uint64(uint64(r.start.UnixMilli())).Uint64(uint64(r.end.UnixMilli())).
			Uint8(r.reason)
		if err := e.enc.Record(e.rec.Bytes()); err != nil {
			e.errors.Add(1)
			continue
		}
		e.records.Add(1)
	}
	msg := e.enc.Finish()
	if err := e.sink.Emit(msg); err != nil {
		e.errors.Add(1)
		return
	}
	e.messages.Add(1)
}
