// Package ovs implements the flow-caching OpenFlow software switch baseline
// the paper compares ESWITCH against (§2.2): a faithful re-implementation of
// the Open vSwitch datapath hierarchy —
//
//   - a microflow cache: an exact-match store keyed by the full packet
//     header tuple, serving the most recently seen transport connections;
//   - a megaflow cache: a tuple-space-search store of masked entries computed
//     reactively by the slow path, bundling microflows into aggregates;
//   - the slow path ("vswitchd"): full priority-ordered classification over
//     the OpenFlow pipeline, reached through an upcall when both caches miss,
//     which computes the megaflow mask (every field examined during
//     classification, whether it matched or not, is un-wildcarded) and
//     installs the resulting megaflow;
//   - whole-cache invalidation on any flow-table update (the brute-force
//     strategy the paper attributes to OVS).
//
// The implementation is deliberately architecture-faithful rather than
// line-by-line faithful: the paper's arguments are about the flow-caching
// architecture (locality assumptions, unpredictable megaflow generation,
// cache-management complexity), all of which this package reproduces.
package ovs

import (
	"fmt"
	"sync"

	"eswitch/internal/cpumodel"
	"eswitch/internal/openflow"
	"eswitch/internal/pkt"
	"eswitch/internal/tss"
)

// Options configure the baseline switch.
type Options struct {
	// MicroflowLimit caps the exact-match cache (OVS EMC is ~8K entries
	// per core; the default is deliberately generous).
	MicroflowLimit int
	// MegaflowLimit caps the megaflow cache (OVS defaults to 200 000).
	MegaflowLimit int
	// EnableMicroflow can be cleared for ablation.
	EnableMicroflow bool
	// PortPrefixTracking enables bit-granular un-wildcarding for exact
	// port matches that fail (OVS's staged-lookup/prefix-tracking
	// behaviour behind Fig. 3); when disabled, failing rules un-wildcard
	// their full field masks.
	PortPrefixTracking bool
	// ConservativeTransportMask un-wildcards the transport ports into
	// every megaflow generated for a packet that carries a transport
	// header, reproducing the per-transport-flow megaflow growth the paper
	// measures on OVS (Figs. 13–16): as the active flow set grows, so does
	// the megaflow cache, until it thrashes and traffic falls back to the
	// slow path.  Disable for the idealized minimal-mask variant.
	ConservativeTransportMask bool
	// UpdateCounters maintains per-flow-entry counters on the slow path.
	UpdateCounters bool
	// Meter, when non-nil, receives cycle and memory-access accounting.
	Meter *cpumodel.Meter
}

// DefaultOptions returns OVS-like defaults.
func DefaultOptions() Options {
	return Options{
		MicroflowLimit:            8192,
		MegaflowLimit:             200000,
		EnableMicroflow:           true,
		PortPrefixTracking:        true,
		ConservativeTransportMask: true,
		UpdateCounters:            false,
	}
}

// LevelStats counts, per datapath level, how many packets were served there
// (the data behind Fig. 14).
type LevelStats struct {
	Microflow uint64
	Megaflow  uint64
	SlowPath  uint64
	// Upcalls equals SlowPath but is kept separately for clarity in
	// reports (every slow-path packet is an upcall).
	Upcalls uint64
	// Invalidations counts whole-cache flushes caused by updates.
	Invalidations uint64
}

// Total returns the number of packets processed.
func (s LevelStats) Total() uint64 { return s.Microflow + s.Megaflow + s.SlowPath }

// microKey is the exact-match key of the microflow cache: the full relevant
// header tuple, so any header change (different source port, different
// ToS, ...) misses the cache — exactly the property the paper calls out.
type microKey struct {
	inPort  uint32
	ethDst  uint64
	ethSrc  uint64
	ethType uint16
	vlan    uint16
	ipSrc   uint32
	ipDst   uint32
	ipProto uint8
	ipDSCP  uint8
	l4Src   uint16
	l4Dst   uint16
}

// megaflow is one megaflow cache entry: a masked match plus the cached
// actions that reproduce the slow path's decision for every packet the mask
// covers.
type megaflow struct {
	match   *openflow.Match
	actions openflow.ActionList
}

// Switch is the flow-caching baseline switch.
type Switch struct {
	opts     Options
	pipeline *openflow.Pipeline
	meter    *cpumodel.Meter

	mu    sync.RWMutex
	micro map[microKey]*megaflow
	mega  *tss.Classifier
	// slowClassifiers are per-table tuple-space classifiers the slow path
	// uses for large tables (vswitchd's own classifier is a TSS); they are
	// rebuilt lazily after updates.
	slowClassifiers map[openflow.TableID]*tss.Classifier

	stats LevelStats

	microRegion *cpumodel.Region
	megaRegion  *cpumodel.Region
	slowRegion  *cpumodel.Region
}

// New builds a baseline switch over the pipeline.
func New(pl *openflow.Pipeline, opts Options) (*Switch, error) {
	if err := pl.Validate(); err != nil {
		return nil, fmt.Errorf("ovs: invalid pipeline: %w", err)
	}
	if opts.MicroflowLimit <= 0 {
		opts.MicroflowLimit = DefaultOptions().MicroflowLimit
	}
	if opts.MegaflowLimit <= 0 {
		opts.MegaflowLimit = DefaultOptions().MegaflowLimit
	}
	s := &Switch{
		opts:            opts,
		pipeline:        pl.Clone(),
		meter:           opts.Meter,
		micro:           make(map[microKey]*megaflow),
		mega:            tss.New(),
		slowClassifiers: make(map[openflow.TableID]*tss.Classifier),
	}
	s.microRegion = s.meter.NewRegion("ovs-microflow", opts.MicroflowLimit*64)
	s.megaRegion = s.meter.NewRegion("ovs-megaflow", 16<<20)
	s.slowRegion = s.meter.NewRegion("ovs-vswitchd", 32<<20)
	return s, nil
}

// Pipeline returns the switch's (slow path) pipeline.
func (s *Switch) Pipeline() *openflow.Pipeline { return s.pipeline }

// Stats returns the per-level packet counters.
func (s *Switch) Stats() LevelStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// CacheSizes returns the current microflow and megaflow cache sizes.
func (s *Switch) CacheSizes() (micro, mega int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.micro), s.mega.Len()
}

// MegaflowEntries returns a snapshot of the megaflow cache matches; the Fig. 3
// experiment inspects it.
func (s *Switch) MegaflowEntries() []*openflow.Match {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries := s.mega.Entries()
	out := make([]*openflow.Match, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.Match.Clone())
	}
	return out
}

// Meter returns the switch's cycle meter (nil when not metering).
func (s *Switch) Meter() *cpumodel.Meter { return s.meter }

// ResetStats clears the per-level counters (cache contents are kept).
func (s *Switch) ResetStats() {
	s.mu.Lock()
	s.stats = LevelStats{}
	s.mu.Unlock()
}

// makeMicroKey extracts the exact-match key from a parsed packet.
func makeMicroKey(p *pkt.Packet) microKey {
	h := &p.Headers
	return microKey{
		inPort:  p.InPort,
		ethDst:  h.EthDst.Uint64(),
		ethSrc:  h.EthSrc.Uint64(),
		ethType: h.EthType,
		vlan:    h.VLANID,
		ipSrc:   uint32(h.IPSrc),
		ipDst:   uint32(h.IPDst),
		ipProto: h.IPProto,
		ipDSCP:  h.IPDSCP,
		l4Src:   h.L4Src,
		l4Dst:   h.L4Dst,
	}
}

func (k microKey) hash() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(k.inPort))
	mix(k.ethDst)
	mix(k.ethSrc)
	mix(uint64(k.ethType)<<16 | uint64(k.vlan))
	mix(uint64(k.ipSrc)<<32 | uint64(k.ipDst))
	mix(uint64(k.ipProto)<<24 | uint64(k.ipDSCP)<<16 | uint64(k.l4Src))
	mix(uint64(k.l4Dst))
	return h
}

// Process sends one packet through the cache hierarchy, filling in the
// verdict.
func (s *Switch) Process(p *pkt.Packet, v *openflow.Verdict) {
	s.mu.Lock()
	s.process(p, v)
	s.mu.Unlock()
}

// ProcessUnlocked is Process without locking, for single-threaded harnesses.
func (s *Switch) ProcessUnlocked(p *pkt.Packet, v *openflow.Verdict) {
	s.process(p, v)
}

func (s *Switch) process(p *pkt.Packet, v *openflow.Verdict) {
	m := s.meter
	v.Reset()
	m.StartPacket()
	m.AddCycles(cpumodel.CostPktIO)

	// OVS always extracts the full flow key (combined L2–L4 parse).
	pkt.ParseL4(p)
	m.AddCycles(cpumodel.CostParser)

	// Level 1: microflow cache.
	var key microKey
	if s.opts.EnableMicroflow {
		key = makeMicroKey(p)
		m.AddCycles(cpumodel.CostMicroflowFixed)
		m.RegionAccess(s.microRegion, key.hash())
		if mf, ok := s.micro[key]; ok {
			s.stats.Microflow++
			openflow.ApplyActions(mf.actions, p, v, s.pipeline.NumPorts)
			m.AddCycles(cpumodel.CostActions + cpumodel.CostPktIO)
			return
		}
	}

	// Level 2: megaflow cache (tuple space search).  Each probed tuple
	// touches the tuple's hash bucket; a hit additionally touches the
	// megaflow entry and its cached action set, and triggers a microflow
	// insertion (the EMC update OVS performs on every megaflow hit).
	res := s.mega.Lookup(p, nil)
	m.AddCycles(cpumodel.CostMegaflowPerGroup * maxInt(res.GroupsProbed, 1))
	for g := 0; g < maxInt(res.GroupsProbed, 1); g++ {
		m.RegionAccess(s.megaRegion, uint64(g)<<14^key.hash()^uint64(p.Headers.IPDst))
	}
	if res.Entry != nil {
		s.stats.Megaflow++
		mf := res.Entry.Aux.(*megaflow)
		m.RegionAccess(s.megaRegion, key.hash()*2654435761%uint64(16<<20))
		m.RegionAccess(s.megaRegion, (key.hash()^0x5bd1e995)*0x9e3779b97f4a7c15%uint64(16<<20))
		if s.opts.EnableMicroflow {
			m.AddCycles(cpumodel.CostMicroflowFixed)
			m.RegionAccess(s.microRegion, key.hash())
			s.insertMicro(key, mf)
		}
		openflow.ApplyActions(mf.actions, p, v, s.pipeline.NumPorts)
		m.AddCycles(cpumodel.CostActions + cpumodel.CostPktIO)
		return
	}

	// Level 3: upcall to the slow path.
	s.stats.SlowPath++
	s.stats.Upcalls++
	m.AddCycles(cpumodel.CostUpcall)
	mf := s.slowPath(p, v)
	if mf != nil {
		s.insertMega(mf)
		if s.opts.EnableMicroflow {
			s.insertMicro(key, mf)
		}
	}
	m.AddCycles(cpumodel.CostActions + cpumodel.CostPktIO)
}

func (s *Switch) insertMicro(key microKey, mf *megaflow) {
	if len(s.micro) >= s.opts.MicroflowLimit {
		// Random-ish eviction: drop the first key the map yields.
		for k := range s.micro {
			delete(s.micro, k)
			break
		}
	}
	s.micro[key] = mf
}

func (s *Switch) insertMega(mf *megaflow) {
	if s.mega.Len() >= s.opts.MegaflowLimit {
		// Cache overflow: evict a sampled fraction (a coarse stand-in for
		// OVS's flow eviction).
		victim := 0
		target := s.opts.MegaflowLimit / 10
		s.mega.DeleteWhere(func(*tss.Entry) bool {
			if victim < target {
				victim++
				return true
			}
			return false
		})
	}
	s.mega.Insert(&tss.Entry{Priority: 0, Match: mf.match, Aux: mf})
}

// InvalidateCaches flushes both cache levels; every flow-table modification
// calls it (the paper: "OVS adopts the brute-force strategy to invalidate the
// entire cache after essentially all changes").
func (s *Switch) InvalidateCaches() {
	s.mu.Lock()
	s.invalidateLocked()
	s.mu.Unlock()
}

func (s *Switch) invalidateLocked() {
	s.micro = make(map[microKey]*megaflow)
	s.mega.Clear()
	s.slowClassifiers = make(map[openflow.TableID]*tss.Classifier)
	s.stats.Invalidations++
}

// AddFlow installs a flow entry into the slow-path pipeline and invalidates
// the caches.
func (s *Switch) AddFlow(tableID openflow.TableID, e *openflow.FlowEntry) error {
	s.mu.Lock()
	t := s.pipeline.Table(tableID)
	if t == nil {
		t = s.pipeline.AddTable(tableID)
	}
	if e.Instructions.HasGoto && s.pipeline.Table(e.Instructions.GotoTable) == nil {
		s.pipeline.AddTable(e.Instructions.GotoTable)
	}
	t.Add(e)
	s.invalidateLocked()
	s.mu.Unlock()
	return nil
}

// DeleteFlow removes matching flow entries and invalidates the caches.
func (s *Switch) DeleteFlow(tableID openflow.TableID, match *openflow.Match, priority int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.pipeline.Table(tableID)
	if t == nil {
		return 0, fmt.Errorf("ovs: table %d does not exist", tableID)
	}
	removed := t.Delete(match, priority)
	if removed > 0 {
		s.invalidateLocked()
	}
	return removed, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
