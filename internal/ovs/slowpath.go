package ovs

import (
	"math/bits"

	"eswitch/internal/cpumodel"
	"eswitch/internal/openflow"
	"eswitch/internal/pkt"
	"eswitch/internal/tss"
)

// slowPath classifies the packet over the full OpenFlow pipeline (the
// "vswitchd" level), fills in the verdict, and returns the megaflow to
// install: a masked match covering every packet that would have taken exactly
// the same decisions, together with the flattened action list that reproduces
// those decisions.
//
// The megaflow mask is the union of everything the classification had to
// look at (§2.2): the fields of every rule that matched, and — for every
// higher-priority rule that did not match — the bits needed to prove the
// mismatch.  With PortPrefixTracking, that proof for exact matches on ports
// and IPv4 addresses is only the most-significant bits up to the first
// divergent bit (OVS's staged-lookup/prefix-tracking behaviour, which is what
// makes megaflow generation arrival-order dependent, Fig. 3); otherwise the
// rule's full mask is un-wildcarded.
func (s *Switch) slowPath(p *pkt.Packet, v *openflow.Verdict) *megaflow {
	acc := newMaskAccumulator(s.opts.PortPrefixTracking)
	// Megaflow keys are built from the packet's original header values:
	// header rewrites applied along the walk must not leak into the cache
	// key (two packets that agree on all originally-observed fields follow
	// the same path and receive the same rewrites, so this is sound).
	orig := &pkt.Packet{Data: p.Data, InPort: p.InPort, Metadata: p.Metadata, Headers: p.Headers}
	acc.orig = orig
	var flat openflow.ActionList
	var actionSet openflow.ActionList

	pl := s.pipeline
	tableID := openflow.TableID(0)
	for depth := 0; depth < openflow.MaxPipelineDepth; depth++ {
		table := pl.Table(tableID)
		if table == nil {
			break
		}
		v.Tables++
		matched := s.classifyTable(table, p, acc)
		if matched == nil {
			v.TableMiss = true
			switch pl.Miss {
			case openflow.MissController:
				v.ToController = true
				flat = append(flat, openflow.ToController())
			default:
				v.Dropped = true
			}
			return s.finishMegaflow(p, acc, flat)
		}
		if s.opts.UpdateCounters {
			matched.Counters.Add(len(p.Data))
		}
		ins := &matched.Instructions
		if len(ins.ApplyActions) > 0 {
			openflow.ApplyActions(ins.ApplyActions, p, v, pl.NumPorts)
			flat = append(flat, ins.ApplyActions...)
			if v.Dropped && !v.Forwarded() && !v.ToController {
				if hasExplicitDrop(ins.ApplyActions) {
					return s.finishMegaflow(p, acc, flat)
				}
				v.Dropped = false
			}
		}
		if ins.ClearActions {
			actionSet = actionSet[:0]
		}
		if len(ins.WriteActions) > 0 {
			actionSet = mergeActionSet(actionSet, ins.WriteActions)
		}
		if ins.MetadataMask != 0 {
			p.Metadata = (p.Metadata &^ ins.MetadataMask) | (ins.WriteMetadata & ins.MetadataMask)
		}
		if !ins.HasGoto {
			if len(actionSet) > 0 {
				openflow.ApplyActions(actionSet, p, v, pl.NumPorts)
				flat = append(flat, actionSet...)
			}
			if !v.Forwarded() && !v.ToController {
				v.Dropped = true
			}
			return s.finishMegaflow(p, acc, flat)
		}
		tableID = ins.GotoTable
	}
	v.Dropped = true
	return s.finishMegaflow(p, acc, flat)
}

// slowPathLinearThreshold is the table size up to which the slow path
// classifies rule by rule (which enables the per-rule, bit-granular prefix
// refinement of Fig. 3); larger tables use a per-table tuple-space classifier
// exactly like vswitchd's own classifier, whose probed-tuple masks feed the
// megaflow mask instead.
const slowPathLinearThreshold = 64

// classifyTable returns the highest-priority entry of the table matching p,
// accumulating the examined fields/bits into acc.
func (s *Switch) classifyTable(table *openflow.FlowTable, p *pkt.Packet, acc *maskAccumulator) *openflow.FlowEntry {
	m := s.meter
	if table.Len() <= slowPathLinearThreshold {
		for _, e := range table.Entries() {
			m.AddCycles(cpumodel.CostSlowPathPerEntry)
			m.RegionAccess(s.slowRegion, uint64(table.ID)<<20^uint64(e.Priority)<<8^uint64(p.Headers.IPDst))
			if acc.observeRule(p, e.Match) {
				return e
			}
		}
		return nil
	}
	cls, ok := s.slowClassifiers[table.ID]
	if !ok {
		cls = tss.New()
		for _, e := range table.Entries() {
			cls.Insert(&tss.Entry{Priority: e.Priority, Match: e.Match, Aux: e})
		}
		s.slowClassifiers[table.ID] = cls
	}
	res := cls.Lookup(p, &accTracker{acc: acc, p: p})
	m.AddCycles(cpumodel.CostSlowPathPerEntry * maxInt(res.GroupsProbed, 1))
	for g := 0; g < maxInt(res.GroupsProbed, 1); g++ {
		m.RegionAccess(s.slowRegion, uint64(table.ID)<<20^uint64(g)<<9^uint64(p.Headers.IPDst))
	}
	if res.Entry == nil {
		return nil
	}
	return res.Entry.Aux.(*openflow.FlowEntry)
}

// accTracker adapts the mask accumulator to the classifier's FieldTracker
// interface (tuple-granular mask observation).
type accTracker struct {
	acc *maskAccumulator
	p   *pkt.Packet
}

func (t *accTracker) ObserveField(f openflow.Field, mask uint64) {
	t.acc.observe(t.p, f, mask)
}

// finishMegaflow builds the megaflow entry from the accumulated masks.  The
// field values are taken from the original packet header values captured when
// the accumulator first observed each field, so header rewrites performed by
// earlier stages do not corrupt the cache key.
func (s *Switch) finishMegaflow(p *pkt.Packet, acc *maskAccumulator, flat openflow.ActionList) *megaflow {
	if s.opts.ConservativeTransportMask && acc.orig != nil {
		switch {
		case acc.orig.Headers.Has(pkt.ProtoTCP):
			acc.observe(acc.orig, openflow.FieldTCPSrc, openflow.FieldTCPSrc.FullMask())
			acc.observe(acc.orig, openflow.FieldTCPDst, openflow.FieldTCPDst.FullMask())
		case acc.orig.Headers.Has(pkt.ProtoUDP):
			acc.observe(acc.orig, openflow.FieldUDPSrc, openflow.FieldUDPSrc.FullMask())
			acc.observe(acc.orig, openflow.FieldUDPDst, openflow.FieldUDPDst.FullMask())
		case acc.orig.Headers.Has(pkt.ProtoSCTP):
			acc.observe(acc.orig, openflow.FieldSCTPSrc, openflow.FieldSCTPSrc.FullMask())
			acc.observe(acc.orig, openflow.FieldSCTPDst, openflow.FieldSCTPDst.FullMask())
		}
	}
	match := openflow.NewMatch()
	for f := openflow.Field(0); f < openflow.NumFields; f++ {
		if acc.masks[f] == 0 {
			continue
		}
		match.SetMasked(f, acc.values[f], acc.masks[f])
	}
	if len(flat) == 0 {
		flat = openflow.ActionList{openflow.Drop()}
	}
	return &megaflow{match: match, actions: flat}
}

// maskAccumulator tracks which bits of which fields the classification has
// examined; values are always read from the original (pre-rewrite) packet.
type maskAccumulator struct {
	prefixTracking bool
	orig           *pkt.Packet
	masks          [openflow.NumFields]uint64
	values         [openflow.NumFields]uint64
	seen           [openflow.NumFields]bool
}

func newMaskAccumulator(prefixTracking bool) *maskAccumulator {
	return &maskAccumulator{prefixTracking: prefixTracking}
}

func (a *maskAccumulator) observe(p *pkt.Packet, f openflow.Field, mask uint64) {
	if !a.seen[f] {
		src := a.orig
		if src == nil {
			src = p
		}
		a.values[f] = openflow.Extract(src, f)
		a.seen[f] = true
	}
	a.masks[f] |= mask
}

// prefixRefinable reports whether mismatches on the field can be proven with
// an MSB prefix (ports and IPv4 addresses).
func prefixRefinable(f openflow.Field) bool {
	switch f {
	case openflow.FieldTCPSrc, openflow.FieldTCPDst, openflow.FieldUDPSrc, openflow.FieldUDPDst,
		openflow.FieldSCTPSrc, openflow.FieldSCTPDst, openflow.FieldIPSrc, openflow.FieldIPDst:
		return true
	default:
		return false
	}
}

// observeRule examines one rule against the packet, accumulating the examined
// bits, and reports whether the rule matched.
func (a *maskAccumulator) observeRule(p *pkt.Packet, m *openflow.Match) bool {
	if m.IsEmpty() {
		return true
	}
	proto := m.RequiredProto()
	if proto&(pkt.ProtoIPv4|pkt.ProtoARP) != 0 {
		a.observe(p, openflow.FieldEthType, openflow.FieldEthType.FullMask())
	}
	if proto&(pkt.ProtoTCP|pkt.ProtoUDP|pkt.ProtoICMP|pkt.ProtoSCTP) != 0 {
		a.observe(p, openflow.FieldIPProto, openflow.FieldIPProto.FullMask())
	}
	if proto&pkt.ProtoVLAN != 0 {
		a.observe(p, openflow.FieldVLANID, openflow.FieldVLANID.FullMask())
	}
	if !p.Headers.Has(proto) {
		// The prerequisite check alone rejected the rule; only the
		// protocol-identifying fields were examined.
		return false
	}
	for _, f := range m.Fields().Fields() {
		want, mask, _ := m.Get(f)
		got := openflow.Extract(p, f)
		diff := (got ^ want) & mask
		if diff == 0 {
			a.observe(p, f, mask)
			continue
		}
		// Mismatch: un-wildcard only what was needed to prove it.
		if a.prefixTracking && prefixRefinable(f) && mask == f.FullMask() {
			width := int(f.Width())
			// The first divergent bit, counted from the MSB of the field.
			firstDiff := width - (63 - bits.LeadingZeros64(diff)) - 1
			prefixLen := firstDiff + 1
			prefixMask := f.FullMask() &^ ((uint64(1) << (width - prefixLen)) - 1)
			a.observe(p, f, prefixMask)
		} else {
			a.observe(p, f, mask)
		}
		return false
	}
	return true
}

func hasExplicitDrop(actions openflow.ActionList) bool {
	for _, a := range actions {
		if a.Type == openflow.ActionDrop {
			return true
		}
	}
	return false
}

func mergeActionSet(set, writes openflow.ActionList) openflow.ActionList {
	for _, w := range writes {
		replaced := false
		for i, a := range set {
			if a.Type == w.Type && (a.Type != openflow.ActionSetField || a.Field == w.Field) {
				set[i] = w
				replaced = true
				break
			}
		}
		if !replaced {
			set = append(set, w)
		}
	}
	return set
}
