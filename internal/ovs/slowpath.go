package ovs

import (
	"eswitch/internal/cpumodel"
	"eswitch/internal/openflow"
	"eswitch/internal/pkt"
	"eswitch/internal/tss"
)

// slowPath classifies the packet over the full OpenFlow pipeline (the
// "vswitchd" level), fills in the verdict, and returns the megaflow to
// install: a masked match covering every packet that would have taken exactly
// the same decisions, together with the flattened action list that reproduces
// those decisions.
//
// The megaflow mask is the union of everything the classification had to
// look at (§2.2): the fields of every rule that matched, and — for every
// higher-priority rule that did not match — the bits needed to prove the
// mismatch.  With PortPrefixTracking, that proof for exact matches on ports
// and IPv4 addresses is only the most-significant bits up to the first
// divergent bit (OVS's staged-lookup/prefix-tracking behaviour, which is what
// makes megaflow generation arrival-order dependent, Fig. 3); otherwise the
// rule's full mask is un-wildcarded.  The observation rules themselves live
// in openflow.MaskAccumulator, shared with the compiled datapath's megaflow
// cache (internal/core) so the two layers derive identical masks.
func (s *Switch) slowPath(p *pkt.Packet, v *openflow.Verdict) *megaflow {
	acc := &openflow.MaskAccumulator{PrefixTracking: s.opts.PortPrefixTracking}
	// Megaflow keys are built from the packet's original header values:
	// header rewrites applied along the walk must not leak into the cache
	// key (two packets that agree on all originally-observed fields follow
	// the same path and receive the same rewrites, so this is sound).
	orig := &pkt.Packet{Data: p.Data, InPort: p.InPort, Metadata: p.Metadata, Headers: p.Headers}
	acc.Reset(orig)
	var flat openflow.ActionList
	var actionSet openflow.ActionList

	pl := s.pipeline
	tableID := openflow.TableID(0)
	for depth := 0; depth < openflow.MaxPipelineDepth; depth++ {
		table := pl.Table(tableID)
		if table == nil {
			break
		}
		v.Tables++
		matched := s.classifyTable(table, p, acc)
		if matched == nil {
			v.TableMiss = true
			switch pl.Miss {
			case openflow.MissController:
				v.ToController = true
				flat = append(flat, openflow.ToController())
			default:
				v.Dropped = true
			}
			return s.finishMegaflow(acc, flat)
		}
		if s.opts.UpdateCounters {
			matched.Counters.Add(len(p.Data))
		}
		ins := &matched.Instructions
		if len(ins.ApplyActions) > 0 {
			openflow.ApplyActions(ins.ApplyActions, p, v, pl.NumPorts)
			// Fields rewritten here are deterministic for every packet on
			// this path: suppress their later observation so the megaflow
			// never pairs an original value with a post-rewrite mask.
			acc.MarkModifiedActions(ins.ApplyActions)
			flat = append(flat, ins.ApplyActions...)
			if v.Dropped && !v.Forwarded() && !v.ToController {
				if hasExplicitDrop(ins.ApplyActions) {
					return s.finishMegaflow(acc, flat)
				}
				v.Dropped = false
			}
		}
		if ins.ClearActions {
			actionSet = actionSet[:0]
		}
		if len(ins.WriteActions) > 0 {
			actionSet = mergeActionSet(actionSet, ins.WriteActions)
		}
		if ins.MetadataMask != 0 {
			p.Metadata = (p.Metadata &^ ins.MetadataMask) | (ins.WriteMetadata & ins.MetadataMask)
			acc.MarkMetadataWrite(ins.MetadataMask)
		}
		if !ins.HasGoto {
			if len(actionSet) > 0 {
				openflow.ApplyActions(actionSet, p, v, pl.NumPorts)
				flat = append(flat, actionSet...)
			}
			if !v.Forwarded() && !v.ToController {
				v.Dropped = true
			}
			return s.finishMegaflow(acc, flat)
		}
		tableID = ins.GotoTable
	}
	v.Dropped = true
	return s.finishMegaflow(acc, flat)
}

// slowPathLinearThreshold is the table size up to which the slow path
// classifies rule by rule (which enables the per-rule, bit-granular prefix
// refinement of Fig. 3); larger tables use a per-table tuple-space classifier
// exactly like vswitchd's own classifier, whose probed-tuple masks feed the
// megaflow mask instead.
const slowPathLinearThreshold = 64

// classifyTable returns the highest-priority entry of the table matching p,
// accumulating the examined fields/bits into acc.
func (s *Switch) classifyTable(table *openflow.FlowTable, p *pkt.Packet, acc *openflow.MaskAccumulator) *openflow.FlowEntry {
	m := s.meter
	if table.Len() <= slowPathLinearThreshold {
		for _, e := range table.Entries() {
			m.AddCycles(cpumodel.CostSlowPathPerEntry)
			m.RegionAccess(s.slowRegion, uint64(table.ID)<<20^uint64(e.Priority)<<8^uint64(p.Headers.IPDst))
			if acc.ObserveRule(p, e.Match) {
				return e
			}
		}
		return nil
	}
	cls, ok := s.slowClassifiers[table.ID]
	if !ok {
		cls = tss.New()
		for _, e := range table.Entries() {
			cls.Insert(&tss.Entry{Priority: e.Priority, Match: e.Match, Aux: e})
		}
		s.slowClassifiers[table.ID] = cls
	}
	res := cls.LookupObserved(p, acc)
	m.AddCycles(cpumodel.CostSlowPathPerEntry * maxInt(res.GroupsProbed, 1))
	for g := 0; g < maxInt(res.GroupsProbed, 1); g++ {
		m.RegionAccess(s.slowRegion, uint64(table.ID)<<20^uint64(g)<<9^uint64(p.Headers.IPDst))
	}
	if res.Entry == nil {
		return nil
	}
	return res.Entry.Aux.(*openflow.FlowEntry)
}

// finishMegaflow builds the megaflow entry from the accumulated masks.  The
// field values are taken from the original packet header values captured when
// the accumulator first observed each field, so header rewrites performed by
// earlier stages do not corrupt the cache key.
func (s *Switch) finishMegaflow(acc *openflow.MaskAccumulator, flat openflow.ActionList) *megaflow {
	if s.opts.ConservativeTransportMask && acc.Orig() != nil {
		orig := acc.Orig()
		switch {
		case orig.Headers.Has(pkt.ProtoTCP):
			acc.Observe(orig, openflow.FieldTCPSrc, openflow.FieldTCPSrc.FullMask())
			acc.Observe(orig, openflow.FieldTCPDst, openflow.FieldTCPDst.FullMask())
		case orig.Headers.Has(pkt.ProtoUDP):
			acc.Observe(orig, openflow.FieldUDPSrc, openflow.FieldUDPSrc.FullMask())
			acc.Observe(orig, openflow.FieldUDPDst, openflow.FieldUDPDst.FullMask())
		case orig.Headers.Has(pkt.ProtoSCTP):
			acc.Observe(orig, openflow.FieldSCTPSrc, openflow.FieldSCTPSrc.FullMask())
			acc.Observe(orig, openflow.FieldSCTPDst, openflow.FieldSCTPDst.FullMask())
		}
	}
	match := openflow.NewMatch()
	acc.ForEach(func(f openflow.Field, value, mask uint64) {
		match.SetMasked(f, value, mask)
	})
	if len(flat) == 0 {
		flat = openflow.ActionList{openflow.Drop()}
	}
	return &megaflow{match: match, actions: flat}
}

func hasExplicitDrop(actions openflow.ActionList) bool {
	for _, a := range actions {
		if a.Type == openflow.ActionDrop {
			return true
		}
	}
	return false
}

func mergeActionSet(set, writes openflow.ActionList) openflow.ActionList {
	for _, w := range writes {
		replaced := false
		for i, a := range set {
			if a.Type == w.Type && (a.Type != openflow.ActionSetField || a.Field == w.Field) {
				set[i] = w
				replaced = true
				break
			}
		}
		if !replaced {
			set = append(set, w)
		}
	}
	return set
}
