package ovs

import (
	"math/rand"
	"testing"

	"eswitch/internal/openflow"
	"eswitch/internal/pkt"
)

func tcpPacket(tb testing.TB, inPort uint32, src, dst pkt.IPv4, sport, dport uint16) *pkt.Packet {
	tb.Helper()
	b := pkt.NewBuilder(128)
	frame := pkt.Clone(b.TCPPacket(
		pkt.EthernetOpts{Dst: pkt.MACFromUint64(0xa), Src: pkt.MACFromUint64(0xb)},
		pkt.IPv4Opts{Src: src, Dst: dst},
		pkt.L4Opts{Src: sport, Dst: dport},
	))
	return &pkt.Packet{Data: frame, InPort: inPort}
}

func ethPacket(tb testing.TB, inPort uint32, dst pkt.MAC) *pkt.Packet {
	tb.Helper()
	b := pkt.NewBuilder(128)
	frame := pkt.Clone(b.EthernetFrame(pkt.EthernetOpts{Dst: dst, Src: pkt.MACFromUint64(0x1), EtherType: 0x88b5}, nil))
	return &pkt.Packet{Data: frame, InPort: inPort}
}

func clonePacket(p *pkt.Packet) *pkt.Packet {
	return &pkt.Packet{Data: append([]byte(nil), p.Data...), InPort: p.InPort, Metadata: p.Metadata}
}

func firewallPipeline() *openflow.Pipeline {
	pl := openflow.NewPipeline(2)
	web := uint64(pkt.IPv4FromOctets(192, 0, 2, 1))
	t0 := pl.Table(0)
	t0.AddFlow(300, openflow.NewMatch().Set(openflow.FieldInPort, 2), openflow.Apply(openflow.Output(1)))
	t0.AddFlow(200, openflow.NewMatch().Set(openflow.FieldInPort, 1).Set(openflow.FieldIPDst, web).Set(openflow.FieldTCPDst, 80), openflow.Apply(openflow.Output(2)))
	t0.AddFlow(100, openflow.NewMatch(), openflow.Apply(openflow.Drop()))
	return pl
}

func macPipeline(n int) *openflow.Pipeline {
	pl := openflow.NewPipeline(4)
	t0 := pl.Table(0)
	for i := 0; i < n; i++ {
		t0.AddFlow(100, openflow.NewMatch().Set(openflow.FieldEthDst, uint64(0x020000000000)+uint64(i)),
			openflow.Apply(openflow.Output(uint32(1+i%4))))
	}
	t0.AddFlow(0, openflow.NewMatch(), openflow.Apply(openflow.Flood()))
	return pl
}

// checkAgainstInterpreter compares the cached switch against the reference
// interpreter on the given traffic, replaying the trace twice so that both
// cold (slow path) and warm (cached) behaviour are covered.
func checkAgainstInterpreter(t *testing.T, pl *openflow.Pipeline, opts Options, packets []*pkt.Packet) *Switch {
	t.Helper()
	sw, err := New(pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	in := openflow.NewInterpreter(pl)
	in.UpdateCounters = false
	for round := 0; round < 2; round++ {
		for i, p := range packets {
			var vRef, vGot openflow.Verdict
			in.Process(clonePacket(p), &vRef, nil)
			sw.Process(clonePacket(p), &vGot)
			if !vRef.Equivalent(&vGot) {
				t.Fatalf("round %d packet %d: interpreter=%v ovs=%v\nmegaflows: %v",
					round, i, vRef.String(), vGot.String(), sw.MegaflowEntries())
			}
		}
	}
	return sw
}

func TestFirewallCorrectness(t *testing.T) {
	pl := firewallPipeline()
	web := pkt.IPv4FromOctets(192, 0, 2, 1)
	var packets []*pkt.Packet
	for inPort := uint32(1); inPort <= 2; inPort++ {
		for _, dport := range []uint16{22, 80, 443} {
			packets = append(packets, tcpPacket(t, inPort, pkt.IPv4FromOctets(198, 51, 100, 7), web, 40000, dport))
		}
	}
	sw := checkAgainstInterpreter(t, pl, DefaultOptions(), packets)
	st := sw.Stats()
	if st.SlowPath == 0 || st.Total() != uint64(2*len(packets)) {
		t.Fatalf("stats %+v", st)
	}
}

func TestCacheHierarchyProgression(t *testing.T) {
	pl := macPipeline(64)
	sw, err := New(pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p := ethPacket(t, 1, pkt.MACFromUint64(0x020000000000+7))
	var v openflow.Verdict
	// First packet: upcall to the slow path.
	sw.Process(clonePacket(p), &v)
	if st := sw.Stats(); st.SlowPath != 1 || st.Microflow != 0 || st.Megaflow != 0 {
		t.Fatalf("after first packet: %+v", st)
	}
	// Second identical packet: microflow hit.
	sw.Process(clonePacket(p), &v)
	if st := sw.Stats(); st.Microflow != 1 {
		t.Fatalf("after second packet: %+v", st)
	}
	// A packet from a different source MAC (same destination) misses the
	// microflow cache but hits the megaflow (which only matched eth_dst).
	b := pkt.NewBuilder(128)
	p2 := &pkt.Packet{Data: pkt.Clone(b.EthernetFrame(pkt.EthernetOpts{
		Dst: pkt.MACFromUint64(0x020000000000 + 7), Src: pkt.MACFromUint64(0x99), EtherType: 0x88b5}, nil)), InPort: 1}
	sw.Process(p2, &v)
	if st := sw.Stats(); st.Megaflow != 1 {
		t.Fatalf("after third packet: %+v", st)
	}
	micro, mega := sw.CacheSizes()
	if micro == 0 || mega == 0 {
		t.Fatalf("cache sizes %d %d", micro, mega)
	}
}

func TestMicroflowDisabledAblation(t *testing.T) {
	pl := macPipeline(16)
	opts := DefaultOptions()
	opts.EnableMicroflow = false
	sw, err := New(pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	p := ethPacket(t, 1, pkt.MACFromUint64(0x020000000000+3))
	var v openflow.Verdict
	for i := 0; i < 5; i++ {
		sw.Process(clonePacket(p), &v)
	}
	st := sw.Stats()
	if st.Microflow != 0 || st.Megaflow != 4 || st.SlowPath != 1 {
		t.Fatalf("stats with microflow disabled: %+v", st)
	}
}

func TestMegaflowMaskOnlyCoversExaminedFields(t *testing.T) {
	// The MAC pipeline matches only eth_dst, so megaflow entries must not
	// constrain L3/L4 fields even though the packets carry them.
	pl := macPipeline(32)
	opts := DefaultOptions()
	opts.ConservativeTransportMask = false
	sw, err := New(pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	b := pkt.NewBuilder(128)
	frame := pkt.Clone(b.TCPPacket(pkt.EthernetOpts{Dst: pkt.MACFromUint64(0x020000000000 + 9), Src: pkt.MACFromUint64(1)},
		pkt.IPv4Opts{Src: 1, Dst: 2}, pkt.L4Opts{Src: 3, Dst: 4}))
	var v openflow.Verdict
	sw.Process(&pkt.Packet{Data: frame, InPort: 1}, &v)
	entries := sw.MegaflowEntries()
	if len(entries) != 1 {
		t.Fatalf("megaflow entries: %d", len(entries))
	}
	fields := entries[0].Fields()
	if !fields.Has(openflow.FieldEthDst) {
		t.Fatalf("megaflow must match eth_dst: %v", entries[0])
	}
	for _, f := range []openflow.Field{openflow.FieldTCPDst, openflow.FieldIPDst, openflow.FieldIPSrc} {
		if fields.Has(f) {
			t.Fatalf("megaflow must not constrain %v: %v", f, entries[0])
		}
	}
}

// fig3Pipeline is the reconstructed flow table of Fig. 3: a single exact
// match on tcp_dst=191 over a catch-all.
func fig3Pipeline() *openflow.Pipeline {
	pl := openflow.NewPipeline(2)
	pl.Table(0).AddFlow(10, openflow.NewMatch().Set(openflow.FieldTCPDst, 191), openflow.Apply(openflow.Output(1)))
	pl.Table(0).AddFlow(0, openflow.NewMatch(), openflow.Apply(openflow.Drop()))
	return pl
}

func fig3Options() Options {
	opts := DefaultOptions()
	// Fig. 3 is about the prefix-tracking mask computation itself, so the
	// conservative transport un-wildcarding is disabled here.
	opts.ConservativeTransportMask = false
	return opts
}

// TestFig3SevenEntries reproduces the seq-1 count of Fig. 3: the seven port
// values of the paper generate one megaflow per divergent bit position
// (positions 3–8) plus the exact entry for the matching port — 7 entries.
func TestFig3SevenEntries(t *testing.T) {
	sw, err := New(fig3Pipeline(), fig3Options())
	if err != nil {
		t.Fatal(err)
	}
	seq1 := []uint16{190, 189, 187, 183, 175, 159, 191}
	var v openflow.Verdict
	for _, port := range seq1 {
		sw.Process(tcpPacket(t, 1, 1, 2, 9999, port), &v)
	}
	if _, mega := sw.CacheSizes(); mega != 7 {
		t.Fatalf("Fig. 3 seq 1 should generate 7 megaflow entries, got %d: %v", mega, sw.MegaflowEntries())
	}
	// Without port prefix tracking every miss un-wildcards the full port:
	// still 7 entries, but each covers a single port only.
	optsNoTrack := fig3Options()
	optsNoTrack.PortPrefixTracking = false
	sw2, _ := New(fig3Pipeline(), optsNoTrack)
	for _, port := range seq1 {
		sw2.Process(tcpPacket(t, 1, 1, 2, 9999, port), &v)
	}
	for _, m := range sw2.MegaflowEntries() {
		if !m.IsExact(openflow.FieldTCPDst) {
			t.Fatalf("without prefix tracking entries must be exact: %v", m)
		}
	}
}

// TestFig3TrafficDependence demonstrates the broader point behind Fig. 3: the
// megaflow cache footprint for the very same flow table depends strongly on
// which packets happen to arrive — ports diverging from the rule early
// collapse onto a handful of broad megaflows, ports adjacent to the rule need
// (nearly) one megaflow each.  (The paper's exact seq-2 single-entry outcome
// additionally depends on OVS's trie-walk un-wildcarding heuristics; a
// per-packet-minimal mask computation such as this one provably produces
// arrival-order-independent cache contents, see EXPERIMENTS.md.)
func TestFig3TrafficDependence(t *testing.T) {
	run := func(ports []uint16) int {
		sw, err := New(fig3Pipeline(), fig3Options())
		if err != nil {
			t.Fatal(err)
		}
		var v openflow.Verdict
		for _, port := range ports {
			sw.Process(tcpPacket(t, 1, 1, 2, 9999, port), &v)
		}
		_, mega := sw.CacheSizes()
		return mega
	}
	// 64 ports in 0–63 all diverge from 191 at the top of the port number:
	// a single broad megaflow covers them all.
	var farPorts []uint16
	for p := uint16(0); p < 64; p++ {
		farPorts = append(farPorts, p)
	}
	// 64 ports right around the rule each need their own (near-)exact
	// megaflow.
	var nearPorts []uint16
	for p := uint16(128); p < 192; p++ {
		nearPorts = append(nearPorts, p)
	}
	far := run(farPorts)
	near := run(nearPorts)
	if far >= near {
		t.Fatalf("expected traffic-dependent cache footprint: far=%d near=%d", far, near)
	}
	if far > 2 {
		t.Fatalf("far-away ports should collapse onto at most 2 megaflows, got %d", far)
	}
	if near < 7 {
		t.Fatalf("rule-adjacent ports should fragment the cache, got %d", near)
	}
}

func TestHighEntropyFieldsDefeatTheCache(t *testing.T) {
	// A pipeline matching on tcp_src (a high-entropy field) forces one
	// megaflow per source port: the flow cache provides no aggregation,
	// which is the pathology behind the paper's port-scan example.
	pl := openflow.NewPipeline(2)
	pl.Table(0).AddFlow(10, openflow.NewMatch().Set(openflow.FieldTCPSrc, 12345), openflow.Apply(openflow.Drop()))
	pl.Table(0).AddFlow(0, openflow.NewMatch(), openflow.Apply(openflow.Output(1)))
	sw, err := New(pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var v openflow.Verdict
	const flows = 500
	for i := 0; i < flows; i++ {
		sw.Process(tcpPacket(t, 1, 1, 2, uint16(20000+i), 80), &v)
	}
	st := sw.Stats()
	if st.SlowPath < flows/2 {
		t.Fatalf("high-entropy traffic should keep hitting the slow path, stats %+v", st)
	}
}

func TestInvalidationOnUpdate(t *testing.T) {
	pl := macPipeline(16)
	sw, err := New(pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p := ethPacket(t, 1, pkt.MACFromUint64(0x020000000000+3))
	var v openflow.Verdict
	sw.Process(clonePacket(p), &v)
	sw.Process(clonePacket(p), &v)
	if micro, mega := sw.CacheSizes(); micro == 0 || mega == 0 {
		t.Fatal("caches should be warm")
	}
	// Any update invalidates everything.
	err = sw.AddFlow(0, openflow.NewEntry(100, openflow.NewMatch().Set(openflow.FieldEthDst, 0x999), openflow.Apply(openflow.Output(2))))
	if err != nil {
		t.Fatal(err)
	}
	if micro, mega := sw.CacheSizes(); micro != 0 || mega != 0 {
		t.Fatalf("caches not invalidated: %d %d", micro, mega)
	}
	if sw.Stats().Invalidations != 1 {
		t.Fatalf("invalidations %d", sw.Stats().Invalidations)
	}
	// Deleting also invalidates; the updated behaviour must be visible.
	sw.Process(clonePacket(p), &v)
	if removed, err := sw.DeleteFlow(0, openflow.NewMatch().Set(openflow.FieldEthDst, 0x020000000000+3), -1); err != nil || removed != 1 {
		t.Fatalf("delete: %d %v", removed, err)
	}
	sw.Process(clonePacket(p), &v)
	if len(v.OutPorts) != 3 { // falls to flood after deletion
		t.Fatalf("post-delete verdict: %v", v.String())
	}
	if _, err := sw.DeleteFlow(42, openflow.NewMatch(), -1); err == nil {
		t.Fatal("deleting from a missing table must fail")
	}
}

func TestMicroflowEvictionRespectsLimit(t *testing.T) {
	pl := macPipeline(64)
	opts := DefaultOptions()
	opts.MicroflowLimit = 16
	sw, err := New(pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	var v openflow.Verdict
	for i := 0; i < 64; i++ {
		sw.Process(ethPacket(t, 1, pkt.MACFromUint64(0x020000000000+uint64(i))), &v)
	}
	if micro, _ := sw.CacheSizes(); micro > 16 {
		t.Fatalf("microflow cache exceeded its limit: %d", micro)
	}
}

func TestMegaflowEvictionRespectsLimit(t *testing.T) {
	// One megaflow per destination MAC with a tiny limit forces eviction.
	pl := macPipeline(512)
	opts := DefaultOptions()
	opts.MegaflowLimit = 64
	opts.EnableMicroflow = false
	sw, err := New(pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	var v openflow.Verdict
	for i := 0; i < 512; i++ {
		sw.Process(ethPacket(t, 1, pkt.MACFromUint64(0x020000000000+uint64(i))), &v)
	}
	if _, mega := sw.CacheSizes(); mega > 70 {
		t.Fatalf("megaflow cache exceeded its limit: %d", mega)
	}
}

// TestRandomPipelineEquivalence fuzzes the cache hierarchy against the
// interpreter over random pipelines and random repeated traffic.
func TestRandomPipelineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 15; trial++ {
		pl := openflow.NewPipeline(4)
		tbl := pl.Table(0)
		n := 3 + rng.Intn(10)
		for i := 0; i < n; i++ {
			m := openflow.NewMatch()
			if rng.Intn(2) == 0 {
				m.Set(openflow.FieldTCPDst, uint64(rng.Intn(5)))
			}
			if rng.Intn(2) == 0 {
				m.SetPrefix(openflow.FieldIPDst, uint64(pkt.IPv4FromOctets(10, byte(rng.Intn(3)), 0, 0)), 16)
			}
			if rng.Intn(3) == 0 {
				m.Set(openflow.FieldInPort, uint64(1+rng.Intn(3)))
			}
			if m.IsEmpty() {
				m.Set(openflow.FieldIPSrc, uint64(rng.Intn(4)))
			}
			tbl.AddFlow(rng.Intn(50)+1, m, openflow.Apply(openflow.Output(uint32(1+rng.Intn(4)))))
		}
		tbl.AddFlow(0, openflow.NewMatch(), openflow.Apply(openflow.Drop()))
		var packets []*pkt.Packet
		for i := 0; i < 60; i++ {
			packets = append(packets, tcpPacket(t, uint32(1+rng.Intn(3)),
				pkt.IPv4(rng.Intn(4)),
				pkt.IPv4FromOctets(10, byte(rng.Intn(3)), 0, byte(rng.Intn(3))),
				uint16(rng.Intn(3)), uint16(rng.Intn(5))))
		}
		checkAgainstInterpreter(t, pl, DefaultOptions(), packets)
	}
}

// TestGatewayStyleRewriteCaching checks that cached megaflows reproduce
// header rewrites (NAT-style set-field) correctly on cache hits.
func TestGatewayStyleRewriteCaching(t *testing.T) {
	pl := openflow.NewPipeline(4)
	pub := uint64(pkt.IPv4FromOctets(203, 0, 113, 50))
	pl.Table(0).AddFlow(10, openflow.NewMatch().Set(openflow.FieldIPSrc, uint64(pkt.IPv4FromOctets(10, 0, 0, 5))),
		openflow.ApplyThenGoto(1, openflow.SetField(openflow.FieldIPSrc, pub)))
	pl.Table(0).AddFlow(0, openflow.NewMatch(), openflow.Apply(openflow.Drop()))
	pl.AddTable(1).AddFlow(0, openflow.NewMatch(), openflow.Apply(openflow.Output(2)))
	sw, err := New(pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p := tcpPacket(t, 1, pkt.IPv4FromOctets(10, 0, 0, 5), pkt.IPv4FromOctets(8, 8, 8, 8), 1234, 80)
		var v openflow.Verdict
		sw.Process(p, &v)
		if !v.Forwarded() || v.OutPorts[0] != 2 {
			t.Fatalf("iteration %d verdict %v", i, v.String())
		}
		pkt.ParseL4(p)
		if p.Headers.IPSrc != pkt.IPv4(pub) {
			t.Fatalf("iteration %d: NAT rewrite lost on cached path: %v", i, p.Headers.IPSrc)
		}
	}
	st := sw.Stats()
	if st.SlowPath != 1 || st.Microflow != 2 {
		t.Fatalf("cache levels: %+v", st)
	}
}

func BenchmarkCachedForwarding(b *testing.B) {
	pl := macPipeline(1024)
	sw, err := New(pl, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	p := ethPacket(b, 1, pkt.MACFromUint64(0x020000000000+77))
	var v openflow.Verdict
	sw.Process(clonePacket(p), &v) // warm the caches
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := *p
		q.Headers = pkt.Headers{}
		sw.ProcessUnlocked(&q, &v)
	}
}
