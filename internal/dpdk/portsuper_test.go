package dpdk

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"eswitch/internal/openflow"
	"eswitch/internal/pkt"
)

// The stubs below are package-local on purpose: the dpdk tests cannot use
// internal/faultinject (it imports dpdk), so the supervisor is exercised
// against minimal backends that fail on command.

// errBackend is a ring backend whose queues report a settable fatal error.
// It is not reopenable: once Down, the port stays Down (the exhausted-trace
// shape).
type errBackend struct {
	*RingBackend
	err atomic.Pointer[error]
}

func newErrBackend(queues int) *errBackend {
	return &errBackend{RingBackend: NewRingBackend(64, queues)}
}

func (b *errBackend) setErr(err error) { b.err.Store(&err) }

func (b *errBackend) QueueError(q int) error {
	if e := b.err.Load(); e != nil {
		return *e
	}
	return b.RingBackend.QueueError(q)
}

// reopenBackend extends errBackend with a Reopen that fails failLeft times
// before succeeding (and clearing the fatal error).
type reopenBackend struct {
	errBackend
	failLeft atomic.Int32
	reopens  atomic.Int32
}

func newReopenBackend(queues int, failures int) *reopenBackend {
	b := &reopenBackend{errBackend: errBackend{RingBackend: NewRingBackend(64, queues)}}
	b.failLeft.Store(int32(failures))
	return b
}

func (b *reopenBackend) Reopen() error {
	b.reopens.Add(1)
	if b.failLeft.Add(-1) >= 0 {
		return errors.New("reopen refused")
	}
	b.err.Store(nil)
	return nil
}

// blockBackend is a ring backend whose RxBurst parks on a channel while the
// gate is up — the wedged-syscall shape the worker watchdog exists for.
type blockBackend struct {
	*RingBackend
	gate    atomic.Bool
	release chan struct{}
}

func newBlockBackend(queues int) *blockBackend {
	return &blockBackend{RingBackend: NewRingBackend(64, queues), release: make(chan struct{})}
}

func (b *blockBackend) RxBurst(q int, out [][]byte) int {
	if b.gate.Load() {
		<-b.release
	}
	return b.RingBackend.RxBurst(q, out)
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal(msg)
}

// fastSupConfig is a scan/backoff geometry quick enough for unit tests.
func fastSupConfig() PortSupervisorConfig {
	return PortSupervisorConfig{
		Interval:   time.Millisecond,
		BackoffMin: 2 * time.Millisecond,
		BackoffMax: 16 * time.Millisecond,
		Seed:       7,
	}
}

func TestPortSupervisorFatalErrorParksPortDown(t *testing.T) {
	be1, be2 := newErrBackend(1), newErrBackend(1)
	sw := NewSwitchWithConfig(DatapathFunc(echoDatapath), SwitchConfig{Backends: []PortBackend{be1, be2}})
	defer sw.Close()
	ps := sw.StartPortSupervisor(fastSupConfig())
	defer ps.Stop()

	boom := errors.New("fd died")
	be1.setErr(boom)
	p1, _ := sw.Port(1)
	waitFor(t, time.Second, func() bool { return p1.LinkState() == LinkDown },
		"port 1 never went Down on a fatal queue error")

	// Workers skip Down ports: a frame on port 1 is never picked up, while
	// port 2 keeps forwarding.
	frame := make([]byte, pkt.MinPacketLen)
	p1.InjectOn(0, frame)
	p2, _ := sw.Port(2)
	p2.InjectOn(0, frame)
	if n := sw.PollOnce(nil); n != 1 {
		t.Fatalf("PollOnce over one Down and one Up port = %d, want 1", n)
	}
	if got := p1.RxQueueLen(0); got != 1 {
		t.Fatalf("Down port's RX queue drained (%d left, want 1)", got)
	}

	// The backend is not reopenable: the port must stay Down and the
	// supervisor must not even attempt a reopen.
	time.Sleep(20 * time.Millisecond)
	if st := p1.LinkState(); st != LinkDown {
		t.Fatalf("non-reopenable port recovered to %v", st)
	}
	if n := ps.Reopens(); n != 0 {
		t.Fatalf("supervisor attempted %d reopens on a non-reopenable backend", n)
	}

	evs := ps.Events()
	if len(evs) == 0 || evs[0].State != LinkDown || !errors.Is(evs[0].Err, boom) {
		t.Fatalf("missing/incomplete Down event: %+v", evs)
	}
	st := sw.Stats()
	if st.PortsDown != 1 {
		t.Fatalf("Stats().PortsDown = %d, want 1", st.PortsDown)
	}
}

func TestPortSupervisorReopenFollowsBackoffSchedule(t *testing.T) {
	const failures = 4
	be := newReopenBackend(1, failures)
	sw := NewSwitchWithConfig(DatapathFunc(echoDatapath), SwitchConfig{Backends: []PortBackend{be}})
	defer sw.Close()
	cfg := fastSupConfig()
	ps := sw.StartPortSupervisor(cfg)
	defer ps.Stop()

	be.setErr(errors.New("fd died"))
	p, _ := sw.Port(1)
	waitFor(t, time.Second, func() bool { return p.LinkState() == LinkUp && ps.Reopens() > failures },
		"port never healed through the failing reopens")

	got := ps.Backoffs(1)
	want := PortBackoffSchedule(cfg, failures)
	if len(got) != failures {
		t.Fatalf("recorded %d backoff delays, want %d: %v", len(got), failures, got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("backoff[%d] = %v, oracle says %v (full: got %v want %v)", i, got[i], want[i], got, want)
		}
	}
	if f := ps.ReopenFails(); f != failures {
		t.Fatalf("ReopenFails = %d, want %d", f, failures)
	}
}

func TestPortSupervisorFlapLabelAndDecay(t *testing.T) {
	be := newReopenBackend(1, 0) // every reopen succeeds immediately
	sw := NewSwitchWithConfig(DatapathFunc(echoDatapath), SwitchConfig{Backends: []PortBackend{be}})
	defer sw.Close()
	cfg := fastSupConfig()
	cfg.FlapThreshold = 3
	cfg.FlapWindow = 250 * time.Millisecond
	ps := sw.StartPortSupervisor(cfg)
	defer ps.Stop()
	p, _ := sw.Port(1)

	// Bounce the port FlapThreshold times inside the window: the first two
	// recoveries come back Up, the third comes back Flapping.  The Down
	// phase can last a single scan (the reopen succeeds immediately), so
	// progress is tracked through the recorded events, not sampled state.
	downEvents := func() int {
		n := 0
		for _, ev := range ps.Events() {
			if ev.State == LinkDown {
				n++
			}
		}
		return n
	}
	for i := 1; i <= 3; i++ {
		be.setErr(errors.New("bounce"))
		waitFor(t, time.Second, func() bool { return downEvents() >= i }, "bounce: no Down")
		waitFor(t, time.Second, func() bool { return p.LinkState() != LinkDown }, "bounce: no recovery")
	}
	if st := p.LinkState(); st != LinkFlapping {
		t.Fatalf("after 3 bounces in the window, state = %v, want flapping", st)
	}
	if st := sw.Stats(); st.PortsFlapping != 1 {
		t.Fatalf("Stats().PortsFlapping = %d, want 1", st.PortsFlapping)
	}

	// Flapping ports still forward.
	frame := make([]byte, pkt.MinPacketLen)
	p.InjectOn(0, frame)
	if n := sw.PollOnce(nil); n != 1 {
		t.Fatalf("PollOnce on a Flapping port = %d, want 1", n)
	}

	// A quiet window decays the label back to Up.
	waitFor(t, 2*time.Second, func() bool { return p.LinkState() == LinkUp },
		"flap label never decayed after a quiet window")
}

func TestPortSupervisorWatchdogStall(t *testing.T) {
	be1, be2 := newBlockBackend(1), newBlockBackend(1)
	sw := NewSwitchWithConfig(DatapathFunc(echoDatapath), SwitchConfig{Backends: []PortBackend{be1, be2}})
	defer sw.Close()
	stop := sw.RunWorkers(1)
	defer stop()

	cfg := fastSupConfig()
	cfg.StallTimeout = 50 * time.Millisecond
	ps := sw.StartPortSupervisor(cfg)
	defer ps.Stop()

	// Let the worker heartbeat freely first, then wedge port 1's RxBurst.
	time.Sleep(10 * time.Millisecond)
	be1.gate.Store(true)
	p1, _ := sw.Port(1)
	waitFor(t, 2*time.Second, func() bool { return ps.Stalls() >= 1 },
		"watchdog never declared the wedged worker stalled")
	waitFor(t, time.Second, func() bool { return p1.LinkState() == LinkDown },
		"stalled worker's port never went Down")

	// Release the syscall: the worker resumes, skips the Down port, and
	// port 2 forwards again.
	be1.gate.Store(false)
	close(be1.release)
	p2, _ := sw.Port(2)
	frame := make([]byte, pkt.MinPacketLen)
	waitFor(t, 2*time.Second, func() bool {
		p2.InjectOn(0, frame)
		return p2.Stats().TxPackets > 0 || sw.Stats().Processed > 0
	}, "surviving port never forwarded after the stall")
}

func TestPanicContainmentQuarantinesBurst(t *testing.T) {
	poison := func(p *pkt.Packet, v *openflow.Verdict) {
		if p.Data[0] == 0xFF {
			panic("poison frame")
		}
		echoDatapath(p, v)
	}
	sw := NewSwitchWithConfig(DatapathFunc(poison), SwitchConfig{NumPorts: 2, RingSize: 64, Queues: 1})
	defer sw.Close()
	p1, _ := sw.Port(1)

	good := make([]byte, pkt.MinPacketLen)
	bad := make([]byte, pkt.MinPacketLen)
	bad[0] = 0xFF
	// One good frame stages before the poison hits; the poison frame and
	// the good frame behind it are quarantined together.
	p1.InjectOn(0, good)
	p1.InjectOn(0, bad)
	p1.InjectOn(0, good)
	sw.PollOnce(nil)

	st := sw.Stats()
	if st.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", st.Panics)
	}
	if st.Quarantined != 2 {
		t.Fatalf("Quarantined = %d, want 2 (poison + the frame behind it)", st.Quarantined)
	}
	if st.Forwarded != 1 {
		t.Fatalf("Forwarded = %d, want 1 (the frame staged before the panic)", st.Forwarded)
	}
	if st.Processed != 3 {
		t.Fatalf("Processed = %d, want 3 (quarantined frames still count as processed)", st.Processed)
	}

	// The worker path survives: the next poll forwards normally.
	p1.InjectOn(0, good)
	if n := sw.PollOnce(nil); n != 1 {
		t.Fatalf("PollOnce after contained panic = %d, want 1", n)
	}
	if st := sw.Stats(); st.Panics != 1 {
		t.Fatalf("Panics after healthy poll = %d, want still 1", st.Panics)
	}
}

func TestHeartbeatRegisterRetire(t *testing.T) {
	sw := NewSwitchWithConfig(DatapathFunc(echoDatapath), SwitchConfig{NumPorts: 2, RingSize: 64, Queues: 2})
	defer sw.Close()
	if n := len(sw.heartbeats()); n != 0 {
		t.Fatalf("heartbeats before workers = %d, want 0", n)
	}
	stop := sw.RunWorkers(2)
	waitFor(t, time.Second, func() bool { return len(sw.heartbeats()) == 2 },
		"worker heartbeats never registered")
	hbs := sw.heartbeats()
	waitFor(t, time.Second, func() bool {
		for _, hb := range hbs {
			if hb.beats.Load() == 0 {
				return false
			}
		}
		return true
	}, "worker heartbeats never advanced")
	stop()
	if n := len(sw.heartbeats()); n != 0 {
		t.Fatalf("heartbeats after stop = %d, want 0", n)
	}
}

func TestPortSupervisorStopIdempotent(t *testing.T) {
	sw := NewSwitchWithConfig(DatapathFunc(echoDatapath), SwitchConfig{NumPorts: 1, RingSize: 64, Queues: 1})
	defer sw.Close()
	ps := sw.StartPortSupervisor(fastSupConfig())
	ps.Stop()
	ps.Stop()
}
