//go:build linux

package dpdk

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// AFPacketBackend is real packet I/O: a raw AF_PACKET socket bound to one
// Linux network interface, so the switch forwards actual frames between veth
// pairs or physical NICs instead of simulated rings.  This is the
// PACKET_MMAP-free first cut — one recvfrom/write syscall per frame, batched
// at the burst level by non-blocking reads — which is plenty to carry the
// end-to-end story; a shared-ring PACKET_RX_RING upgrade can slot in behind
// the same PortBackend contract later.
//
// The backend is single-queue (Queues() == 1): the kernel does not shard one
// packet socket, so worker 0 owns the interface.  Received frames are
// delivered in recycled slot buffers, valid until the next RxBurst, exactly
// like the pcap backend.  Per-syscall cost makes this backend's ceiling far
// below the ring backend's — it exists for real-traffic correctness, not for
// Mpps records.
type AFPacketBackend struct {
	fd    int
	iface string
	// slots are the recycled receive buffers (grown to the burst size on
	// first use).
	slots   [][]byte
	slotCap int

	rxPackets atomic.Uint64
	txPackets atomic.Uint64
	rxDrops   atomic.Uint64
	txDrops   atomic.Uint64
	closed    atomic.Bool
}

// ethPAll is ETH_P_ALL: receive every protocol the interface sees.
const ethPAll = 0x0003

// packetIgnoreOutgoing is the PACKET_IGNORE_OUTGOING socket option (Linux >=
// 4.20): tell the kernel not to loop our own transmissions back to the
// socket.  Older kernels reject it, and RxBurst filters PACKET_OUTGOING
// frames itself, so setting it is best-effort.
const packetIgnoreOutgoing = 23

// htons converts a short to network byte order (AF_PACKET protocol numbers
// are passed big-endian even through the host-endian syscall ABI).
func htons(v uint16) uint16 {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], v)
	return binary.NativeEndian.Uint16(b[:])
}

// NewAFPacketBackend opens a raw packet socket bound to the named interface.
// Requires CAP_NET_RAW (typically root).
func NewAFPacketBackend(iface string) (*AFPacketBackend, error) {
	ifi, err := net.InterfaceByName(iface)
	if err != nil {
		return nil, fmt.Errorf("dpdk: afpacket %s: %w", iface, err)
	}
	fd, err := syscall.Socket(syscall.AF_PACKET, syscall.SOCK_RAW, int(htons(ethPAll)))
	if err != nil {
		return nil, fmt.Errorf("dpdk: afpacket %s: socket: %w (CAP_NET_RAW required)", iface, err)
	}
	if err := syscall.Bind(fd, &syscall.SockaddrLinklayer{
		Protocol: htons(ethPAll),
		Ifindex:  ifi.Index,
	}); err != nil {
		syscall.Close(fd)
		return nil, fmt.Errorf("dpdk: afpacket %s: bind: %w", iface, err)
	}
	if err := syscall.SetNonblock(fd, true); err != nil {
		syscall.Close(fd)
		return nil, fmt.Errorf("dpdk: afpacket %s: nonblock: %w", iface, err)
	}
	// Best-effort niceties: don't deliver our own transmissions (newer
	// kernels), and see frames addressed to anyone (physical NICs; veth
	// taps see everything regardless).
	_ = syscall.SetsockoptInt(fd, syscall.SOL_PACKET, packetIgnoreOutgoing, 1)
	setPromisc(fd, ifi.Index)

	slotCap := ifi.MTU + 18 // L2 header + VLAN tag headroom
	if slotCap < 2048 {
		slotCap = 2048
	}
	return &AFPacketBackend{fd: fd, iface: iface, slotCap: slotCap}, nil
}

// packetMreq mirrors the kernel's struct packet_mreq (the syscall package
// has the constants but not the setsockopt wrapper).
type packetMreq struct {
	ifindex int32
	typ     uint16
	alen    uint16
	address [8]byte
}

// setPromisc joins the interface's promiscuous membership so physical NICs
// deliver frames addressed to anyone.  Best-effort: veth taps see everything
// anyway, and a failure only narrows what a physical NIC hands up.
func setPromisc(fd, ifindex int) {
	mreq := packetMreq{ifindex: int32(ifindex), typ: syscall.PACKET_MR_PROMISC}
	_, _, _ = syscall.Syscall6(syscall.SYS_SETSOCKOPT, uintptr(fd),
		uintptr(syscall.SOL_PACKET), uintptr(syscall.PACKET_ADD_MEMBERSHIP),
		uintptr(unsafe.Pointer(&mreq)), unsafe.Sizeof(mreq), 0)
}

// Interface returns the bound interface name.
func (b *AFPacketBackend) Interface() string { return b.iface }

// Queues implements PortBackend: one packet socket is one queue.
func (b *AFPacketBackend) Queues() int { return 1 }

// RxBurst implements PortBackend: drain up to len(out) frames with
// non-blocking recvfrom calls into recycled slot buffers, skipping
// PACKET_OUTGOING frames (our own transmissions looped back by kernels
// without PACKET_IGNORE_OUTGOING).
func (b *AFPacketBackend) RxBurst(q int, out [][]byte) int {
	if b.closed.Load() {
		return 0
	}
	n := 0
	for n < len(out) {
		if n >= len(b.slots) {
			b.slots = append(b.slots, make([]byte, b.slotCap))
		}
		ln, from, err := syscall.Recvfrom(b.fd, b.slots[n], syscall.MSG_DONTWAIT)
		if err != nil {
			if err == syscall.EINTR {
				continue
			}
			// EAGAIN means drained; anything else (including EBADF after a
			// concurrent Close) ends the burst too.
			break
		}
		if ln <= 0 {
			break
		}
		if sll, ok := from.(*syscall.SockaddrLinklayer); ok && sll.Pkttype == syscall.PACKET_OUTGOING {
			continue
		}
		if ln > len(b.slots[n]) {
			ln = len(b.slots[n]) // oversized frame truncated to the slot
		}
		out[n] = b.slots[n][:ln]
		n++
	}
	if n > 0 {
		b.rxPackets.Add(uint64(n))
	}
	return n
}

// TxBurst implements PortBackend: one write per frame, stopping at the
// first frame the kernel will not take right now (EAGAIN/ENOBUFS), which the
// caller's TX policy may retry.
func (b *AFPacketBackend) TxBurst(q int, frames [][]byte) int {
	if b.closed.Load() {
		return 0
	}
	n := 0
	for _, f := range frames {
		if !b.send(f) {
			break
		}
		n++
	}
	if n > 0 {
		b.txPackets.Add(uint64(n))
	}
	return n
}

// send writes one frame, reporting false when the kernel queue is full.
func (b *AFPacketBackend) send(frame []byte) bool {
	for {
		_, err := syscall.Write(b.fd, frame)
		switch err {
		case nil:
			return true
		case syscall.EINTR:
			continue
		default:
			return false
		}
	}
}

// TransmitSlow implements SlowPathTransmitter by sending directly: the
// kernel serializes writes on one socket, so controller-originated frames
// need no dedicated lane.
func (b *AFPacketBackend) TransmitSlow(frame []byte) bool {
	if b.closed.Load() {
		return false
	}
	if b.send(frame) {
		b.txPackets.Add(1)
		return true
	}
	b.txDrops.Add(1)
	return false
}

// Stats implements PortBackend.
func (b *AFPacketBackend) Stats() PortStats {
	return PortStats{
		RxPackets: b.rxPackets.Load(),
		TxPackets: b.txPackets.Load(),
		RxDrops:   b.rxDrops.Load(),
		TxDrops:   b.txDrops.Load(),
	}
}

// Close implements PortBackend (idempotent).
func (b *AFPacketBackend) Close() error {
	if b.closed.Swap(true) {
		return nil
	}
	return syscall.Close(b.fd)
}
