//go:build linux

package dpdk

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// AFPacketBackend is real packet I/O: a raw AF_PACKET socket bound to one
// Linux network interface, so the switch forwards actual frames between veth
// pairs or physical NICs instead of simulated rings.  This is the
// PACKET_MMAP-free first cut — one recvfrom/write syscall per frame, batched
// at the burst level by non-blocking reads — which is plenty to carry the
// end-to-end story; a shared-ring PACKET_RX_RING upgrade can slot in behind
// the same PortBackend contract later.
//
// The backend is single-queue (Queues() == 1): the kernel does not shard one
// packet socket, so worker 0 owns the interface.  Received frames are
// delivered in recycled slot buffers, valid until the next RxBurst, exactly
// like the pcap backend.  Per-syscall cost makes this backend's ceiling far
// below the ring backend's — it exists for real-traffic correctness, not for
// Mpps records.
//
// Failure surfacing: errnos split into backpressure (EAGAIN/ENOBUFS — the
// caller's TX policy retries), transient noise (counted in RxErrors/
// TxErrors, burst ends), and fatal conditions (EBADF, ENETDOWN, ENXIO,
// ENODEV, EIO — the fd is dead).  A fatal errno is recorded in the queue's
// error slot where QueueError exposes it; the port supervisor then takes
// the port Down and calls Reopen, which re-dials the socket.
type AFPacketBackend struct {
	// fd is the packet socket, atomic because Reopen swaps in a fresh one
	// while the supervisor owns the (quiesced) port.
	fd    atomic.Int64
	iface string
	// slots are the recycled receive buffers (grown to the burst size on
	// first use).
	slots   [][]byte
	slotCap int

	rxPackets atomic.Uint64
	txPackets atomic.Uint64
	rxDrops   atomic.Uint64
	txDrops   atomic.Uint64
	rxErrors  atomic.Uint64
	txErrors  atomic.Uint64
	closed    atomic.Bool
	// fatal is the single queue's error slot: first fatal errno wins, and
	// bursts return 0 while it is set (a dead fd should not be hammered with
	// syscalls every poll).  Reopen clears it.
	fatal atomic.Pointer[error]
}

// ethPAll is ETH_P_ALL: receive every protocol the interface sees.
const ethPAll = 0x0003

// packetIgnoreOutgoing is the PACKET_IGNORE_OUTGOING socket option (Linux >=
// 4.20): tell the kernel not to loop our own transmissions back to the
// socket.  Older kernels reject it, and RxBurst filters PACKET_OUTGOING
// frames itself, so setting it is best-effort.
const packetIgnoreOutgoing = 23

// htons converts a short to network byte order (AF_PACKET protocol numbers
// are passed big-endian even through the host-endian syscall ABI).
func htons(v uint16) uint16 {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], v)
	return binary.NativeEndian.Uint16(b[:])
}

// NewAFPacketBackend opens a raw packet socket bound to the named interface.
// Requires CAP_NET_RAW (typically root).
func NewAFPacketBackend(iface string) (*AFPacketBackend, error) {
	fd, slotCap, err := dialAFPacket(iface)
	if err != nil {
		return nil, err
	}
	b := &AFPacketBackend{iface: iface, slotCap: slotCap}
	b.fd.Store(int64(fd))
	return b, nil
}

// dialAFPacket is the socket construction sequence, shared by the initial
// open and the supervisor-driven Reopen: socket, bind to the interface,
// nonblocking, plus the best-effort niceties.
func dialAFPacket(iface string) (fd, slotCap int, err error) {
	ifi, err := net.InterfaceByName(iface)
	if err != nil {
		return -1, 0, fmt.Errorf("dpdk: afpacket %s: %w", iface, err)
	}
	fd, err = syscall.Socket(syscall.AF_PACKET, syscall.SOCK_RAW, int(htons(ethPAll)))
	if err != nil {
		return -1, 0, fmt.Errorf("dpdk: afpacket %s: socket: %w (CAP_NET_RAW required)", iface, err)
	}
	if err := syscall.Bind(fd, &syscall.SockaddrLinklayer{
		Protocol: htons(ethPAll),
		Ifindex:  ifi.Index,
	}); err != nil {
		syscall.Close(fd)
		return -1, 0, fmt.Errorf("dpdk: afpacket %s: bind: %w", iface, err)
	}
	if err := syscall.SetNonblock(fd, true); err != nil {
		syscall.Close(fd)
		return -1, 0, fmt.Errorf("dpdk: afpacket %s: nonblock: %w", iface, err)
	}
	// Best-effort niceties: don't deliver our own transmissions (newer
	// kernels), and see frames addressed to anyone (physical NICs; veth
	// taps see everything regardless).
	_ = syscall.SetsockoptInt(fd, syscall.SOL_PACKET, packetIgnoreOutgoing, 1)
	setPromisc(fd, ifi.Index)

	slotCap = ifi.MTU + 18 // L2 header + VLAN tag headroom
	if slotCap < 2048 {
		slotCap = 2048
	}
	return fd, slotCap, nil
}

// packetMreq mirrors the kernel's struct packet_mreq (the syscall package
// has the constants but not the setsockopt wrapper).
type packetMreq struct {
	ifindex int32
	typ     uint16
	alen    uint16
	address [8]byte
}

// setPromisc joins the interface's promiscuous membership so physical NICs
// deliver frames addressed to anyone.  Best-effort: veth taps see everything
// anyway, and a failure only narrows what a physical NIC hands up.
func setPromisc(fd, ifindex int) {
	mreq := packetMreq{ifindex: int32(ifindex), typ: syscall.PACKET_MR_PROMISC}
	_, _, _ = syscall.Syscall6(syscall.SYS_SETSOCKOPT, uintptr(fd),
		uintptr(syscall.SOL_PACKET), uintptr(syscall.PACKET_ADD_MEMBERSHIP),
		uintptr(unsafe.Pointer(&mreq)), unsafe.Sizeof(mreq), 0)
}

// Interface returns the bound interface name.
func (b *AFPacketBackend) Interface() string { return b.iface }

// Queues implements PortBackend: one packet socket is one queue.
func (b *AFPacketBackend) Queues() int { return 1 }

// fatalErrno reports whether an I/O errno means the fd is dead — no amount
// of re-polling will recover it, only a re-dial.
func fatalErrno(err error) bool {
	switch err {
	case syscall.EBADF, syscall.ENETDOWN, syscall.ENXIO, syscall.ENODEV, syscall.EIO:
		return true
	}
	return false
}

// recordFatal parks the first fatal errno in the queue-error slot, unless it
// is the echo of an intentional Close or of an fd Reopen already replaced.
func (b *AFPacketBackend) recordFatal(op string, fd int, errno error) {
	if b.closed.Load() || int64(fd) != b.fd.Load() {
		return
	}
	err := fmt.Errorf("dpdk: afpacket %s: %s: %w", b.iface, op, errno)
	b.fatal.CompareAndSwap(nil, &err)
}

// RxBurst implements PortBackend: drain up to len(out) frames with
// non-blocking recvfrom calls into recycled slot buffers, skipping
// PACKET_OUTGOING frames (our own transmissions looped back by kernels
// without PACKET_IGNORE_OUTGOING).  EINTR retries, EAGAIN means drained;
// any other errno is counted in RxErrors, and a fatal one additionally
// parks in the queue-error slot for the port supervisor.
func (b *AFPacketBackend) RxBurst(q int, out [][]byte) int {
	if b.closed.Load() || b.fatal.Load() != nil {
		return 0
	}
	fd := int(b.fd.Load())
	n := 0
	for n < len(out) {
		if n >= len(b.slots) {
			b.slots = append(b.slots, make([]byte, b.slotCap))
		}
		ln, from, err := syscall.Recvfrom(fd, b.slots[n], syscall.MSG_DONTWAIT)
		if err != nil {
			if err == syscall.EINTR {
				continue
			}
			if err == syscall.EAGAIN {
				break // drained
			}
			b.rxErrors.Add(1)
			if fatalErrno(err) {
				b.recordFatal("recvfrom", fd, err)
			}
			break
		}
		if ln <= 0 {
			break
		}
		if sll, ok := from.(*syscall.SockaddrLinklayer); ok && sll.Pkttype == syscall.PACKET_OUTGOING {
			continue
		}
		if ln > len(b.slots[n]) {
			ln = len(b.slots[n]) // oversized frame truncated to the slot
		}
		out[n] = b.slots[n][:ln]
		n++
	}
	if n > 0 {
		b.rxPackets.Add(uint64(n))
	}
	return n
}

// TxBurst implements PortBackend: one write per frame, stopping at the
// first frame the kernel will not take right now (EAGAIN/ENOBUFS), which the
// caller's TX policy may retry.
func (b *AFPacketBackend) TxBurst(q int, frames [][]byte) int {
	if b.closed.Load() || b.fatal.Load() != nil {
		return 0
	}
	n := 0
	for _, f := range frames {
		if !b.send(f) {
			break
		}
		n++
	}
	if n > 0 {
		b.txPackets.Add(uint64(n))
	}
	return n
}

// send writes one frame, reporting false when the kernel queue is full
// (EAGAIN/ENOBUFS — the caller retries) or the write failed.  Non-
// backpressure failures count in TxErrors; fatal ones park in the
// queue-error slot.
func (b *AFPacketBackend) send(frame []byte) bool {
	fd := int(b.fd.Load())
	for {
		_, err := syscall.Write(fd, frame)
		switch {
		case err == nil:
			return true
		case err == syscall.EINTR:
			continue
		case err == syscall.EAGAIN || err == syscall.ENOBUFS:
			return false
		default:
			b.txErrors.Add(1)
			if fatalErrno(err) {
				b.recordFatal("write", fd, err)
			}
			return false
		}
	}
}

// TransmitSlow implements SlowPathTransmitter by sending directly: the
// kernel serializes writes on one socket, so controller-originated frames
// need no dedicated lane.
func (b *AFPacketBackend) TransmitSlow(frame []byte) bool {
	if b.closed.Load() || b.fatal.Load() != nil {
		return false
	}
	if b.send(frame) {
		b.txPackets.Add(1)
		return true
	}
	b.txDrops.Add(1)
	return false
}

// Stats implements PortBackend.
func (b *AFPacketBackend) Stats() PortStats {
	return PortStats{
		RxPackets: b.rxPackets.Load(),
		TxPackets: b.txPackets.Load(),
		RxDrops:   b.rxDrops.Load(),
		TxDrops:   b.txDrops.Load(),
		RxErrors:  b.rxErrors.Load(),
		TxErrors:  b.txErrors.Load(),
	}
}

// QueueError implements PortBackend: the parked fatal errno, if any.
func (b *AFPacketBackend) QueueError(q int) error {
	if b.closed.Load() {
		return nil
	}
	if p := b.fatal.Load(); p != nil {
		return *p
	}
	return nil
}

// Reopen implements ReopenableBackend: re-dial the socket after a fatal
// error.  The port supervisor calls this while the port is Down (workers
// skip it), so no burst is concurrently using the old fd.
func (b *AFPacketBackend) Reopen() error {
	fd, slotCap, err := dialAFPacket(b.iface)
	if err != nil {
		return err
	}
	old := b.fd.Swap(int64(fd))
	wasClosed := b.closed.Swap(false)
	if !wasClosed && old >= 0 && old != int64(fd) {
		syscall.Close(int(old))
	}
	if slotCap > b.slotCap {
		// The interface MTU grew across the re-dial: retire the old slots so
		// they are re-grown at the new capacity.
		b.slotCap = slotCap
		b.slots = nil
	}
	b.fatal.Store(nil)
	return nil
}

// Close implements PortBackend (idempotent).
func (b *AFPacketBackend) Close() error {
	if b.closed.Swap(true) {
		return nil
	}
	return syscall.Close(int(b.fd.Load()))
}
