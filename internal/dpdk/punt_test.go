package dpdk

import (
	"bytes"
	"testing"

	"eswitch/internal/openflow"
	"eswitch/internal/pkt"
	"eswitch/internal/slowpath"
)

// puntingDatapath fabricates verdicts per destination port byte (frame[0]):
//
//	0x01 -> output:2
//	0x02 -> controller (explicit action punt from table 5)
//	0x03 -> output:2 AND controller (the dual verdict of satellite concern)
//	else -> drop
type puntingDatapath struct{}

func (puntingDatapath) Process(p *pkt.Packet, v *openflow.Verdict) {
	v.Reset()
	switch p.Data[0] {
	case 0x01:
		v.OutPorts = append(v.OutPorts, 2)
	case 0x02:
		v.ToController = true
		v.NotePunt(openflow.PuntMiss, 1)
	case 0x03:
		v.OutPorts = append(v.OutPorts, 2)
		v.ToController = true
		v.NotePunt(openflow.PuntAction, 5)
	default:
		v.Dropped = true
	}
}

// TestStageForwardAndPunt pins the verdict taxonomy fix: a verdict carrying
// both output ports and ToController must be staged to TX AND punted,
// counting once in each of forwarded and toCtrl (previously the punt was
// silently lost to the Forwarded branch).
func TestStageForwardAndPunt(t *testing.T) {
	sw := NewSwitchWithConfig(puntingDatapath{}, SwitchConfig{NumPorts: 2, RingSize: 64, Queues: 1})
	rings := sw.armPuntRings(16, 0) // unchecked: below-burst ring is fine in-package
	port1, _ := sw.Port(1)
	port2, _ := sw.Port(2)

	port1.InjectOn(AutoQueue, []byte{0x03, 0xaa})
	sw.PollOnce(nil)

	st := sw.Stats()
	if st.Processed != 1 || st.Forwarded != 1 || st.ToCtrl != 1 || st.Dropped != 0 {
		t.Fatalf("dual verdict counted wrong: %+v", st)
	}
	if got := port2.DrainTx(); got != 1 {
		t.Fatalf("dual verdict staged %d frames to TX, want 1", got)
	}
	var rec slowpath.PuntRecord
	if !rings[0].Pop(&rec) {
		t.Fatal("dual verdict was not punted")
	}
	if !bytes.Equal(rec.Frame, []byte{0x03, 0xaa}) || rec.InPort != 1 ||
		rec.Table != 5 || rec.Reason != openflow.PuntAction {
		t.Fatalf("punt record = %+v", rec)
	}
	if st.Punts != 1 || st.PuntDrops != 0 {
		t.Fatalf("punt counters = %d/%d", st.Punts, st.PuntDrops)
	}

	// Pure punt and pure forward still behave.
	port1.InjectOn(AutoQueue, []byte{0x02})
	port1.InjectOn(AutoQueue, []byte{0x01})
	sw.PollOnce(nil)
	st = sw.Stats()
	if st.Forwarded != 2 || st.ToCtrl != 2 || st.Dropped != 0 {
		t.Fatalf("counters after mixed traffic: %+v", st)
	}
	if !rings[0].Pop(&rec) || rec.Table != 1 || rec.Reason != openflow.PuntMiss || rec.InPort != 1 {
		t.Fatalf("miss punt record = %+v", rec)
	}
}

// TestPuntDisarmedCountsOnly: without punt rings the substrate keeps the
// pre-slow-path behaviour — ToController verdicts are counted and the frame
// is discarded — and the punt counters stay zero.
func TestPuntDisarmedCountsOnly(t *testing.T) {
	sw := NewSwitchWithConfig(puntingDatapath{}, SwitchConfig{NumPorts: 2, RingSize: 64, Queues: 1})
	port1, _ := sw.Port(1)
	port1.InjectOn(AutoQueue, []byte{0x02})
	sw.PollOnce(nil)
	st := sw.Stats()
	if st.ToCtrl != 1 || st.Punts != 0 || st.PuntDrops != 0 {
		t.Fatalf("disarmed stats: %+v", st)
	}
}

// TestPuntOverflowAccounting: a full punt ring drops (never blocks the
// worker), and Punts+PuntDrops == ToCtrl exactly.
func TestPuntOverflowAccounting(t *testing.T) {
	sw := NewSwitchWithConfig(puntingDatapath{}, SwitchConfig{NumPorts: 2, RingSize: 256, Queues: 1})
	rings := sw.armPuntRings(4, 0) // capacity 3, deliberately below burst to force overflow
	port1, _ := sw.Port(1)
	const total = 50
	for i := 0; i < total; i++ {
		port1.InjectOn(AutoQueue, []byte{0x02, byte(i)})
	}
	for sw.PollOnce(nil) > 0 {
	}
	st := sw.Stats()
	if st.ToCtrl != total {
		t.Fatalf("toCtrl = %d, want %d", st.ToCtrl, total)
	}
	if st.Punts+st.PuntDrops != st.ToCtrl {
		t.Fatalf("accounting broken: %d punts + %d drops != %d toCtrl", st.Punts, st.PuntDrops, st.ToCtrl)
	}
	if st.Punts != uint64(rings[0].Capacity()) {
		t.Fatalf("punts = %d, want ring capacity %d", st.Punts, rings[0].Capacity())
	}
	if rings[0].Len() != rings[0].Capacity() {
		t.Fatalf("ring holds %d", rings[0].Len())
	}
}

// tableDP forwards InPort 1 to port 2 and punts everything else — the
// datapath behind the output:TABLE PacketOut tests.
type tableDP struct{}

func (tableDP) Process(p *pkt.Packet, v *openflow.Verdict) {
	v.Reset()
	if p.InPort == 1 {
		v.OutPorts = append(v.OutPorts, 2)
		return
	}
	v.ToController = true
	v.NotePunt(openflow.PuntMiss, 0)
}

func TestSwitchPacketOut(t *testing.T) {
	sw := NewSwitchWithConfig(tableDP{}, SwitchConfig{NumPorts: 4, RingSize: 64, Queues: 1})
	frame := []byte{0xde, 0xad}

	// Plain physical output.
	if err := sw.PacketOut(0, frame, openflow.ActionList{openflow.Output(3)}); err != nil {
		t.Fatal(err)
	}
	p3, _ := sw.Port(3)
	if p3.DrainTx() != 1 {
		t.Fatal("output:3 did not transmit")
	}

	// Flood skips the ingress port.
	if err := sw.PacketOut(2, frame, openflow.ActionList{openflow.Flood()}); err != nil {
		t.Fatal(err)
	}
	counts := 0
	for _, port := range sw.Ports() {
		n := port.DrainTx()
		if port.ID == 2 && n != 0 {
			t.Fatal("flood echoed out the ingress port")
		}
		counts += n
	}
	if counts != 3 {
		t.Fatalf("flood reached %d ports, want 3", counts)
	}

	// output:TABLE re-injects through the datapath and forwards its verdict.
	if err := sw.PacketOut(1, frame, openflow.ActionList{openflow.Output(openflow.PortTable)}); err != nil {
		t.Fatal(err)
	}
	p2, _ := sw.Port(2)
	if p2.DrainTx() != 1 {
		t.Fatal("output:TABLE verdict not transmitted")
	}

	// A re-injected frame that punts again is cut and counted, not looped.
	if err := sw.PacketOut(3, frame, openflow.ActionList{openflow.Output(openflow.PortTable)}); err != nil {
		t.Fatal(err)
	}
	if sw.ReinjectPunts() != 1 {
		t.Fatalf("ReinjectPunts = %d", sw.ReinjectPunts())
	}

	// Unsupported actions and unknown ports are rejected.
	if err := sw.PacketOut(0, frame, openflow.ActionList{openflow.SetField(openflow.FieldEthDst, 5)}); err == nil {
		t.Fatal("set-field packet-out accepted")
	}
	if err := sw.PacketOut(0, frame, openflow.ActionList{openflow.Output(99)}); err == nil {
		t.Fatal("unknown port accepted")
	}
	// Drop ends execution without transmitting.
	if err := sw.PacketOut(0, frame, openflow.ActionList{openflow.Drop(), openflow.Output(1)}); err != nil {
		t.Fatal(err)
	}
	p1, _ := sw.Port(1)
	if p1.DrainTx() != 0 {
		t.Fatal("drop packet-out still transmitted")
	}
}
