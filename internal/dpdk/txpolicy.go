package dpdk

import (
	"fmt"
	"runtime"
	"time"
)

// This file implements TX-queue backpressure: what a forwarding worker does
// when an output port's TX ring is full.  A real NIC drops on a full
// descriptor ring; a software switch can afford to push back instead.  The
// policy is per-switch and the mechanism is strictly worker-local — retry
// state, backoff state and the spill backlog all live in the worker's own
// memory plane, so backpressure adds no shared mutable state to the
// steady-state path.
//
// The per-frame state machine:
//
//	staged ──enqueue ok──────────────────────────────▶ transmitted
//	   │
//	   ring full
//	   │
//	   ├─ TxDrop:  ───────────────────────────────────▶ dropped (txDrops++)
//	   ├─ TxBlock: backoff, re-enqueue (txRetries++) ──▶ transmitted
//	   │             └─ after txRetryLimit rounds ─────▶ dropped (txDrops++)
//	   └─ TxSpill: parked in the worker's spill ring
//	                 └─ next poll: re-enqueue ahead of newly staged frames
//	                    (txRetries++) ────────────────▶ transmitted
//	                 └─ backlog beyond spillCap ───────▶ dropped (txDrops++)
//
// Receive order is preserved in every mode: block retries the remaining
// suffix in place, and spill always drains older frames before newly staged
// ones.

// TxPolicy selects the backpressure behaviour of a full TX ring.
type TxPolicy uint8

const (
	// TxDrop counts overflow frames as TX drops immediately — the NIC-like
	// default, and the only policy with zero added latency.
	TxDrop TxPolicy = iota
	// TxBlock re-attempts the enqueue with a bounded, escalating backoff
	// (pause-loop spin, then yields, then short sleeps) and counts a drop
	// only after txRetryLimit rounds.  Favors delivery over latency.
	TxBlock
	// TxSpill parks overflow frames in a bounded worker-local backlog and
	// re-attempts them on subsequent polls, ahead of newly staged frames so
	// receive order is preserved.  The worker never stalls; drops happen
	// only when the backlog itself overflows.
	TxSpill
)

// String names the policy as accepted by ParseTxPolicy.
func (p TxPolicy) String() string {
	switch p {
	case TxDrop:
		return "drop"
	case TxBlock:
		return "block"
	case TxSpill:
		return "spill"
	default:
		return fmt.Sprintf("txpolicy(%d)", uint8(p))
	}
}

// ParseTxPolicy parses a policy name (drop | block | spill).
func ParseTxPolicy(s string) (TxPolicy, error) {
	switch s {
	case "drop":
		return TxDrop, nil
	case "block":
		return TxBlock, nil
	case "spill":
		return TxSpill, nil
	default:
		return TxDrop, fmt.Errorf("dpdk: unknown TX policy %q (want drop, block or spill)", s)
	}
}

// txRetryLimit bounds the block policy's re-enqueue rounds per flush; with
// the escalating backoff this caps the worst-case stall of one flush at
// around a millisecond before the remainder is dropped.
const txRetryLimit = 256

// spillCap bounds one worker's per-port spill backlog (frames).  Keeping it
// a small multiple of the TX ring size bounds both memory and the added
// latency of a spilled frame.
const spillCap = 1024

// SetTxPolicy selects the backpressure policy for full TX rings.  Call it
// before starting workers (or the first PollOnce); the workers read the
// policy without synchronization.
//
// The spill policy's carried-across-polls backlog lives in the stable state
// of dedicated RunWorkers workers.  Anonymous PollOnce calls use pooled
// state instead, so they resolve any backlog before returning: one final
// enqueue attempt, then the remainder is counted as drops.
func (s *Switch) SetTxPolicy(p TxPolicy) { s.txPolicy = p }

// TxPolicy returns the switch's backpressure policy.
func (s *Switch) TxPolicy() TxPolicy { return s.txPolicy }

// txEnqueue transmits the longest prefix of frames the backend accepts on TX
// queue q, leaving overflow accounting to the policy layer (unlike the
// public TxBurst, which drop-counts immediately).  This is exactly the
// PortBackend.TxBurst contract, so the policy layer works unchanged against
// every backend.
func (p *Port) txEnqueue(q int, frames [][]byte) int {
	return p.be.TxBurst(q, frames)
}

// countTxDrops records n frames abandoned by the backpressure policy in the
// port counters (the worker keeps its own per-worker tally too).
func (p *Port) countTxDrops(n int) {
	if n > 0 {
		p.policyDrops.Add(uint64(n))
	}
}

// txBackoff pauses the worker between TX retry rounds: a pause-loop spin for
// the first rounds (the consumer is probably mid-drain), then cooperative
// yields, then short sleeps so a stuck consumer cannot burn the worker's
// whole time slice.
func (ws *workerState) txBackoff(attempt int) {
	switch {
	case attempt < 8:
		x := ws.spin
		for i := 0; i < attempt*32; i++ {
			x = x*2862933555777941757 + 3037000493
		}
		ws.spin = x
	case attempt < 64:
		runtime.Gosched()
	default:
		time.Sleep(5 * time.Microsecond)
	}
}

// flushSpill is the spill policy's per-port flush: drain the existing
// backlog first (older frames keep their place in the receive order), then
// newly staged frames, and park whatever still does not fit — up to spillCap
// — in the worker-owned backlog for the next poll.  It returns the new
// backlog slice (capacity is retained across polls, so the steady state
// allocates nothing once the backlog has grown to its working size).
func (s *Switch) flushSpill(ws *workerState, port *Port, spill, staged [][]byte, retries, drops *uint64) [][]byte {
	if len(spill) > 0 {
		// Every parked frame re-attempted this poll is one retry.
		*retries += uint64(len(spill))
		n := port.txEnqueue(ws.txq, spill)
		spill = spill[:copy(spill, spill[n:])]
	}
	if len(spill) == 0 && len(staged) > 0 {
		n := port.txEnqueue(ws.txq, staged)
		staged = staged[n:]
	}
	if len(staged) > 0 {
		room := spillCap - len(spill)
		if room > len(staged) {
			room = len(staged)
		}
		if room > 0 {
			spill = append(spill, staged[:room]...)
		}
		if over := len(staged) - room; over > 0 {
			*drops += uint64(over)
			port.countTxDrops(over)
		}
	}
	return spill
}

// abandonSpill is the worker-shutdown path: one final enqueue attempt per
// backlogged port, then whatever is still stuck is accounted as dropped so
// Stats() stays truthful after RunWorkers' stop function returns.
func (s *Switch) abandonSpill(ws *workerState) {
	if ws.spillPending == 0 {
		return
	}
	var retries, drops uint64
	for pi, spill := range ws.txSpill {
		if len(spill) == 0 {
			continue
		}
		retries += uint64(len(spill))
		n := s.ports[pi].txEnqueue(ws.txq, spill)
		if over := len(spill) - n; over > 0 {
			drops += uint64(over)
			s.ports[pi].countTxDrops(over)
		}
		ws.txSpill[pi] = spill[:0]
	}
	ws.spillPending = 0
	if retries > 0 {
		ws.counters.txRetries.Add(retries)
	}
	if drops > 0 {
		ws.counters.txDrops.Add(drops)
	}
}
