package dpdk

import (
	"testing"
	"testing/quick"
	"time"

	"eswitch/internal/openflow"
	"eswitch/internal/pkt"
)

func TestRingBasics(t *testing.T) {
	r := NewRing(8)
	if r.Capacity() < 7 {
		t.Fatalf("capacity %d", r.Capacity())
	}
	if _, ok := r.Dequeue(); ok {
		t.Fatal("empty ring must not dequeue")
	}
	for i := 0; i < r.Capacity(); i++ {
		if !r.Enqueue([]byte{byte(i)}) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if r.Enqueue([]byte{0xff}) {
		t.Fatal("full ring must reject enqueue")
	}
	for i := 0; i < r.Capacity(); i++ {
		f, ok := r.Dequeue()
		if !ok || f[0] != byte(i) {
			t.Fatalf("dequeue %d: %v %v", i, f, ok)
		}
	}
}

func TestRingFIFOProperty(t *testing.T) {
	f := func(values []byte) bool {
		r := NewRing(len(values) + 1)
		for _, v := range values {
			if !r.Enqueue([]byte{v}) {
				return false
			}
		}
		for _, v := range values {
			got, ok := r.Dequeue()
			if !ok || got[0] != v {
				return false
			}
		}
		_, ok := r.Dequeue()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBurstOperations(t *testing.T) {
	r := NewRing(64)
	in := make([][]byte, 10)
	for i := range in {
		in[i] = []byte{byte(i)}
	}
	if n := r.EnqueueBurst(in); n != 10 {
		t.Fatalf("enqueue burst %d", n)
	}
	out := make([][]byte, 32)
	if n := r.DequeueBurst(out); n != 10 {
		t.Fatalf("dequeue burst %d", n)
	}
	if out[9][0] != 9 {
		t.Fatalf("burst order broken: %v", out[9])
	}
}

func TestPortCounters(t *testing.T) {
	p := NewPort(1, 4)
	if !p.Inject([]byte{1}) || !p.Inject([]byte{2}) || !p.Inject([]byte{3}) {
		t.Fatal("inject failed")
	}
	// Ring of size 4 has capacity 3.
	if p.Inject([]byte{4}) {
		t.Fatal("inject should fail when the RX ring is full")
	}
	st := p.Stats()
	if st.RxPackets != 3 || st.RxDrops != 1 {
		t.Fatalf("rx stats %+v", st)
	}
	p.Transmit([]byte{9})
	if p.DrainTx() != 1 {
		t.Fatal("drain")
	}
	if p.Stats().TxPackets != 1 {
		t.Fatalf("tx stats %+v", p.Stats())
	}
}

// echoDatapath forwards every packet to port 2.
func echoDatapath(p *pkt.Packet, v *openflow.Verdict) {
	v.Reset()
	v.OutPorts = append(v.OutPorts, 2)
}

func dropDatapath(p *pkt.Packet, v *openflow.Verdict) {
	v.Reset()
	v.Dropped = true
}

func TestSwitchPollOnce(t *testing.T) {
	sw := NewSwitch(DatapathFunc(echoDatapath), 4, 1024)
	p1, err := sw.Port(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Port(0); err == nil {
		t.Fatal("port 0 must not exist")
	}
	if _, err := sw.Port(9); err == nil {
		t.Fatal("port 9 must not exist")
	}
	frame := make([]byte, pkt.MinPacketLen)
	for i := 0; i < 100; i++ {
		p1.Inject(frame)
	}
	processed := 0
	for processed < 100 {
		n := sw.PollOnce(nil)
		if n == 0 {
			break
		}
		processed += n
	}
	if processed != 100 {
		t.Fatalf("processed %d", processed)
	}
	st := sw.Stats()
	if st.Processed != 100 || st.Forwarded != 100 {
		t.Fatalf("switch stats %+v", st)
	}
	p2, _ := sw.Port(2)
	if p2.Stats().TxPackets != 100 {
		t.Fatalf("port 2 tx %+v", p2.Stats())
	}
}

func TestSwitchDropAccounting(t *testing.T) {
	sw := NewSwitch(DatapathFunc(dropDatapath), 2, 64)
	p1, _ := sw.Port(1)
	for i := 0; i < 10; i++ {
		p1.Inject(make([]byte, 60))
	}
	sw.PollOnce(nil)
	if st := sw.Stats(); st.Dropped != 10 || st.Forwarded != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRunWorkersParallel(t *testing.T) {
	sw := NewSwitch(DatapathFunc(echoDatapath), 4, 4096)
	stop := sw.RunWorkers(2)
	defer stop()
	frame := make([]byte, 60)
	const per = 2000
	drainAll := func() {
		for portID := uint32(1); portID <= 4; portID++ {
			port, _ := sw.Port(portID)
			port.DrainTx()
		}
	}
	for portID := uint32(1); portID <= 4; portID++ {
		port, _ := sw.Port(portID)
		for i := 0; i < per; i++ {
			for !port.Inject(frame) {
				drainAll()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}
	// Wait for the workers to drain everything.
	deadline := time.Now().Add(30 * time.Second)
	for sw.Stats().Processed < 4*per && time.Now().Before(deadline) {
		drainAll()
		time.Sleep(time.Millisecond)
	}
	if got := sw.Stats().Processed; got < 4*per {
		t.Fatalf("workers processed %d of %d", got, 4*per)
	}
}

func BenchmarkRing(b *testing.B) {
	r := NewRing(1024)
	frame := make([]byte, 60)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Enqueue(frame)
		r.Dequeue()
	}
}
