package dpdk

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"eswitch/internal/openflow"
	"eswitch/internal/pkt"
)

func TestRingBasics(t *testing.T) {
	r := NewRing(8)
	if r.Capacity() < 7 {
		t.Fatalf("capacity %d", r.Capacity())
	}
	if _, ok := r.Dequeue(); ok {
		t.Fatal("empty ring must not dequeue")
	}
	for i := 0; i < r.Capacity(); i++ {
		if !r.Enqueue([]byte{byte(i)}) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if r.Enqueue([]byte{0xff}) {
		t.Fatal("full ring must reject enqueue")
	}
	for i := 0; i < r.Capacity(); i++ {
		f, ok := r.Dequeue()
		if !ok || f[0] != byte(i) {
			t.Fatalf("dequeue %d: %v %v", i, f, ok)
		}
	}
}

func TestRingFIFOProperty(t *testing.T) {
	f := func(values []byte) bool {
		r := NewRing(len(values) + 1)
		for _, v := range values {
			if !r.Enqueue([]byte{v}) {
				return false
			}
		}
		for _, v := range values {
			got, ok := r.Dequeue()
			if !ok || got[0] != v {
				return false
			}
		}
		_, ok := r.Dequeue()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBurstOperations(t *testing.T) {
	r := NewRing(64)
	in := make([][]byte, 10)
	for i := range in {
		in[i] = []byte{byte(i)}
	}
	if n := r.EnqueueBurst(in); n != 10 {
		t.Fatalf("enqueue burst %d", n)
	}
	out := make([][]byte, 32)
	if n := r.DequeueBurst(out); n != 10 {
		t.Fatalf("dequeue burst %d", n)
	}
	if out[9][0] != 9 {
		t.Fatalf("burst order broken: %v", out[9])
	}
}

func TestPortCounters(t *testing.T) {
	p := NewPortWithConfig(PortConfig{ID: 1, RingSize: 4, Queues: 1})
	if !p.InjectOn(AutoQueue, []byte{1}) || !p.InjectOn(AutoQueue, []byte{2}) || !p.InjectOn(AutoQueue, []byte{3}) {
		t.Fatal("inject failed")
	}
	// Ring of size 4 has capacity 3.
	if p.InjectOn(AutoQueue, []byte{4}) {
		t.Fatal("inject should fail when the RX ring is full")
	}
	st := p.Stats()
	if st.RxPackets != 3 || st.RxDrops != 1 {
		t.Fatalf("rx stats %+v", st)
	}
	p.Transmit([]byte{9})
	if p.DrainTx() != 1 {
		t.Fatal("drain")
	}
	if p.Stats().TxPackets != 1 {
		t.Fatalf("tx stats %+v", p.Stats())
	}
}

// echoDatapath forwards every packet to port 2.
func echoDatapath(p *pkt.Packet, v *openflow.Verdict) {
	v.Reset()
	v.OutPorts = append(v.OutPorts, 2)
}

func dropDatapath(p *pkt.Packet, v *openflow.Verdict) {
	v.Reset()
	v.Dropped = true
}

func TestSwitchPollOnce(t *testing.T) {
	sw := NewSwitchWithConfig(DatapathFunc(echoDatapath), SwitchConfig{NumPorts: 4, RingSize: 1024, Queues: DefaultQueues})
	p1, err := sw.Port(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Port(0); err == nil {
		t.Fatal("port 0 must not exist")
	}
	if _, err := sw.Port(9); err == nil {
		t.Fatal("port 9 must not exist")
	}
	frame := make([]byte, pkt.MinPacketLen)
	for i := 0; i < 100; i++ {
		p1.InjectOn(AutoQueue, frame)
	}
	processed := 0
	for processed < 100 {
		n := sw.PollOnce(nil)
		if n == 0 {
			break
		}
		processed += n
	}
	if processed != 100 {
		t.Fatalf("processed %d", processed)
	}
	st := sw.Stats()
	if st.Processed != 100 || st.Forwarded != 100 {
		t.Fatalf("switch stats %+v", st)
	}
	p2, _ := sw.Port(2)
	if p2.Stats().TxPackets != 100 {
		t.Fatalf("port 2 tx %+v", p2.Stats())
	}
}

func TestSwitchDropAccounting(t *testing.T) {
	sw := NewSwitchWithConfig(DatapathFunc(dropDatapath), SwitchConfig{NumPorts: 2, RingSize: 64, Queues: DefaultQueues})
	p1, _ := sw.Port(1)
	for i := 0; i < 10; i++ {
		p1.InjectOn(AutoQueue, make([]byte, 60))
	}
	sw.PollOnce(nil)
	if st := sw.Stats(); st.Dropped != 10 || st.Forwarded != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRunWorkersParallel(t *testing.T) {
	sw := NewSwitchWithConfig(DatapathFunc(echoDatapath), SwitchConfig{NumPorts: 4, RingSize: 4096, Queues: DefaultQueues})
	stop := sw.RunWorkers(2)
	defer stop()
	frame := make([]byte, 60)
	const per = 2000
	drainAll := func() {
		for portID := uint32(1); portID <= 4; portID++ {
			port, _ := sw.Port(portID)
			port.DrainTx()
		}
	}
	for portID := uint32(1); portID <= 4; portID++ {
		port, _ := sw.Port(portID)
		for i := 0; i < per; i++ {
			for !port.InjectOn(AutoQueue, frame) {
				drainAll()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}
	// Wait for the workers to drain everything.
	deadline := time.Now().Add(30 * time.Second)
	for sw.Stats().Processed < 4*per && time.Now().Before(deadline) {
		drainAll()
		time.Sleep(time.Millisecond)
	}
	if got := sw.Stats().Processed; got < 4*per {
		t.Fatalf("workers processed %d of %d", got, 4*per)
	}
}

func BenchmarkRing(b *testing.B) {
	r := NewRing(1024)
	frame := make([]byte, 60)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Enqueue(frame)
		r.Dequeue()
	}
}

// TestRingWraparoundBurst exercises EnqueueBurst/DequeueBurst across many
// head/tail wraps of a small ring, asserting content and order survive the
// index wraparound.
func TestRingWraparoundBurst(t *testing.T) {
	r := NewRing(8) // 8 slots, capacity 7
	in := make([][]byte, 5)
	out := make([][]byte, 8)
	seq := byte(0)
	for round := 0; round < 100; round++ {
		for i := range in {
			in[i] = []byte{seq}
			seq++
		}
		if n := r.EnqueueBurst(in); n != len(in) {
			t.Fatalf("round %d: enqueued %d of %d", round, n, len(in))
		}
		if n := r.DequeueBurst(out); n != len(in) {
			t.Fatalf("round %d: dequeued %d of %d", round, n, len(in))
		}
		for i := 0; i < len(in); i++ {
			if out[i][0] != in[i][0] {
				t.Fatalf("round %d slot %d: got %d want %d", round, i, out[i][0], in[i][0])
			}
		}
	}
	// Partial burst against a nearly-full ring: exactly the free space fits.
	for i := 0; i < r.Capacity()-2; i++ {
		r.Enqueue([]byte{0xaa})
	}
	if n := r.EnqueueBurst(in); n != 2 {
		t.Fatalf("partial enqueue burst: got %d want 2", n)
	}
	if r.Len() != r.Capacity() {
		t.Fatalf("ring should be full, len %d", r.Len())
	}
}

// TestTxFlushOrdering asserts frames leave a TX queue in receive order when
// the worker stages and burst-flushes them (single queue so the stream is
// totally ordered).
func TestTxFlushOrdering(t *testing.T) {
	sw := NewSwitchWithConfig(DatapathFunc(echoDatapath), SwitchConfig{NumPorts: 2, RingSize: 1024, Queues: 1})
	p1, _ := sw.Port(1)
	const n = 300
	for i := 0; i < n; i++ {
		if !p1.InjectOn(AutoQueue, []byte{byte(i), byte(i >> 8)}) {
			t.Fatalf("inject %d failed", i)
		}
	}
	for processed := 0; processed < n; {
		got := sw.PollOnce(nil)
		if got == 0 {
			break
		}
		processed += got
	}
	p2, _ := sw.Port(2)
	for i := 0; i < n; i++ {
		f, ok := p2.be.(*RingBackend).TxDequeue(0)
		if !ok {
			t.Fatalf("tx queue ran dry at %d", i)
		}
		if f[0] != byte(i) || f[1] != byte(i>>8) {
			t.Fatalf("tx order broken at %d: got %d,%d", i, f[0], f[1])
		}
	}
}

// TestRSSSteeringSpreadsAcrossQueues injects many distinct 5-tuple flows
// into ONE port and asserts the RSS hash spreads them over multiple RX
// queues — the property that lets one hot port scale across workers.
func TestRSSSteeringSpreadsAcrossQueues(t *testing.T) {
	sw := NewSwitchWithConfig(DatapathFunc(echoDatapath), SwitchConfig{NumPorts: 2, RingSize: 4096, Queues: 4})
	p1, _ := sw.Port(1)
	bld := pkt.NewBuilder(128)
	for i := 0; i < 128; i++ {
		f := pkt.Clone(bld.TCPPacket(pkt.EthernetOpts{},
			pkt.IPv4Opts{Src: pkt.IPv4FromOctets(10, 0, 0, byte(i)), Dst: pkt.IPv4FromOctets(192, 168, 0, 1)},
			pkt.L4Opts{Src: uint16(1000 + i), Dst: 80}))
		if !p1.InjectOn(AutoQueue, f) {
			t.Fatalf("inject %d failed", i)
		}
	}
	busy := 0
	for q := 0; q < p1.NumQueues(); q++ {
		if p1.RxQueueLen(q) > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("RSS steered 128 flows onto %d of %d queues", busy, p1.NumQueues())
	}
	// Both directions of a flow must share a queue.
	fwd := pkt.Clone(bld.TCPPacket(pkt.EthernetOpts{},
		pkt.IPv4Opts{Src: pkt.IPv4FromOctets(1, 1, 1, 1), Dst: pkt.IPv4FromOctets(2, 2, 2, 2)},
		pkt.L4Opts{Src: 1111, Dst: 2222}))
	rev := pkt.Clone(bld.TCPPacket(pkt.EthernetOpts{},
		pkt.IPv4Opts{Src: pkt.IPv4FromOctets(2, 2, 2, 2), Dst: pkt.IPv4FromOctets(1, 1, 1, 1)},
		pkt.L4Opts{Src: 2222, Dst: 1111}))
	qf := pkt.RSSHash(fwd) % uint32(p1.NumQueues())
	qr := pkt.RSSHash(rev) % uint32(p1.NumQueues())
	if qf != qr {
		t.Fatalf("flow directions split across queues %d and %d", qf, qr)
	}
}

// TestWorkerStatsAggregation checks that the padded per-worker counters fold
// into the same aggregate totals the shared counters used to produce.
func TestWorkerStatsAggregation(t *testing.T) {
	sw := NewSwitchWithConfig(DatapathFunc(echoDatapath), SwitchConfig{NumPorts: 2, RingSize: 4096, Queues: 4})
	stop := sw.RunWorkers(4)
	p1, _ := sw.Port(1)
	bld := pkt.NewBuilder(128)
	const n = 1000
	injected := 0
	for i := 0; i < n; i++ {
		f := pkt.Clone(bld.UDPPacket(pkt.EthernetOpts{},
			pkt.IPv4Opts{Src: pkt.IPv4FromOctets(10, 0, byte(i>>8), byte(i)), Dst: pkt.IPv4FromOctets(10, 9, 9, 9)},
			pkt.L4Opts{Src: uint16(i), Dst: 53}))
		for !p1.InjectOn(AutoQueue, f) {
			for _, port := range sw.Ports() {
				port.DrainTx()
			}
			time.Sleep(50 * time.Microsecond)
		}
		injected++
	}
	deadline := time.Now().Add(20 * time.Second)
	for sw.Stats().Processed < uint64(injected) && time.Now().Before(deadline) {
		for _, port := range sw.Ports() {
			port.DrainTx()
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	st := sw.Stats()
	if st.Processed != uint64(injected) || st.Forwarded != uint64(injected) {
		t.Fatalf("aggregated stats %+v, want processed=forwarded=%d", st, injected)
	}
}

// TestSwitchCloseRacesRunningWorkers closes a switch while its workers are
// mid-traffic, twice concurrently: every backend must be released exactly
// once (the Port's closed latch, not worker quiescence, guarantees it),
// bursts after Close return 0 instead of panicking, and the verdict
// accounting stays whole — every processed frame is still counted.
func TestSwitchCloseRacesRunningWorkers(t *testing.T) {
	backends := make([]PortBackend, 3)
	counters := make([]*closeCountBackend, 3)
	for i := range backends {
		ccb := &closeCountBackend{PortBackend: NewRingBackend(1024, 2)}
		counters[i], backends[i] = ccb, ccb
	}
	sw := NewSwitchWithConfig(DatapathFunc(dropDatapath), SwitchConfig{Backends: backends})
	stop := sw.RunWorkers(2)

	// Feed traffic from a producer goroutine while two goroutines race
	// Close against the polling workers.
	prodDone := make(chan struct{})
	go func() {
		defer close(prodDone)
		frame := make([]byte, pkt.MinPacketLen)
		for i := 0; i < 5000; i++ {
			p, _ := sw.Port(uint32(i%3 + 1))
			if p.Closed() {
				return
			}
			p.Inject(frame)
		}
	}()
	time.Sleep(2 * time.Millisecond) // let traffic start flowing
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := sw.Close(); err != nil {
				t.Errorf("racing Close: %v", err)
			}
		}()
	}
	wg.Wait()
	<-prodDone
	stop()

	for i, ccb := range counters {
		if n := ccb.closes.Load(); n != 1 {
			t.Fatalf("backend %d closed %d times, want exactly 1", i, n)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("re-Close after the race: %v", err)
	}
	for i, ccb := range counters {
		if n := ccb.closes.Load(); n != 1 {
			t.Fatalf("re-Close reached backend %d (%d calls)", i, n)
		}
	}
	// No accounting holes: with a dropping datapath every frame that was
	// processed must be accounted as dropped — nothing vanished in the race.
	st := sw.Stats()
	if st.Processed != st.Dropped {
		t.Fatalf("accounting hole across the close race: %+v", st)
	}
}

// TestWorkerStatsCheckInvariants exercises the canonical counter-identity
// checker over synthetic folds: the documented identities must hold exactly,
// and every single-counter perturbation must be caught.
func TestWorkerStatsCheckInvariants(t *testing.T) {
	good := WorkerStats{
		Processed: 1000, Forwarded: 900, Dropped: 50, ToCtrl: 50,
		Punts: 30, PuntDrops: 10, PuntSuppressed: 5, PuntFiltered: 5,
		CacheHits: 700, CacheMisses: 300, CacheStale: 10,
		MegaHits: 200, MegaMisses: 100,
	}
	if err := good.CheckInvariants(true); err != nil {
		t.Fatalf("consistent stats rejected: %v", err)
	}
	// Each perturbation breaks exactly one identity.
	cases := map[string]func(*WorkerStats){
		"punt":          func(st *WorkerStats) { st.Punts++ },
		"microflow":     func(st *WorkerStats) { st.CacheMisses-- },
		"megaflow":      func(st *WorkerStats) { st.MegaHits++ },
		"stale>misses":  func(st *WorkerStats) { st.CacheStale = st.CacheMisses + 1 },
		"punts-unarmed": func(st *WorkerStats) {}, // checked with armed=false below
	}
	for name, mutate := range cases {
		st := good
		mutate(&st)
		armed := name != "punts-unarmed"
		if err := st.CheckInvariants(armed); err == nil {
			t.Fatalf("%s: inconsistent stats accepted: %+v (armed=%v)", name, st, armed)
		}
	}
	// Disengaged subsystems are not checked: zero cache and punt counters
	// pass with the rings unarmed.
	quiet := WorkerStats{Processed: 10, Forwarded: 10}
	if err := quiet.CheckInvariants(false); err != nil {
		t.Fatalf("quiet stats rejected: %v", err)
	}
	// Contained panics abandon bursts between probe and tally: the
	// microflow identity is waived, the others still checked.
	panicked := good
	panicked.Panics, panicked.Quarantined = 1, 32
	panicked.Processed += 32
	if err := panicked.CheckInvariants(true); err != nil {
		t.Fatalf("panic-containing stats rejected: %v", err)
	}
}
