// Package dpdk is the in-memory dataplane substrate standing in for the
// Intel DPDK environment of the paper's prototype (§4.2): multi-queue ports
// backed by single-producer/single-consumer rings, RSS steering of injected
// frames, burst-oriented receive and transmit, and run-to-completion worker
// loops sharded over queues so a single hot port scales across cores (the
// Fig. 19 scalability experiment).
//
// No kernel-bypass I/O happens here — the point of the substrate is to drive
// the switch datapaths with minimum-size frames at memory speed and to
// account for the fixed per-packet I/O cost the way the paper's model does.
//
// # Threading model
//
// Every port owns N RX/TX queue pairs (DefaultQueues unless configured).  A
// symmetric RSS hash over the injected frame's 5-tuple (pkt.RSSHash) steers
// each frame to one RX queue, so both directions of a flow land on the same
// queue.  RunWorkers starts one run-to-completion goroutine ("core") per
// worker; worker w owns the RX queue indices q ≡ w (mod workers) of every
// port and TX queue w of every port, so each ring keeps exactly one producer
// and one consumer and the workers share nothing but the datapath.  When the
// datapath supports worker registration (WorkerDatapath — the compiled
// ESWITCH datapath does), each worker registers a handle bundling its
// worker-local resource plane — quiescence epoch, meter shard, burst scratch
// — and brackets every poll iteration with Enter/Exit, which is what lets
// concurrent flow-table updates retire superseded flow-table versions safely
// while the steady-state loop takes zero locks and shares no mutable state.
//
// Transmission is batched: verdicts accumulate frames into per-worker,
// per-port staging buffers that are flushed to the TX rings with one
// EnqueueBurst per port at the end of each poll iteration, and forwarding
// statistics accumulate in padded per-worker counters folded together by
// Stats() on demand — the hot loop performs no shared-cache-line writes.
// When a TX ring is full the switch's TxPolicy decides between dropping
// (NIC-like default), blocking with bounded backoff, or spilling into a
// worker-local backlog; see txpolicy.go.
package dpdk

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"eswitch/internal/hist"
	"eswitch/internal/lockcount"
	"eswitch/internal/openflow"
	"eswitch/internal/pkt"
	"eswitch/internal/slowpath"
)

// DefaultBurst is the burst size used by the RX/TX loops (DPDK's customary
// 32-packet bursts).
const DefaultBurst = 32

// latSampleEvery is the burst-duration sampling decimation: with latency
// sampling armed (SetLatencySampling), one classifyBurst call in
// latSampleEvery is timed.  Two time.Now reads cost a measurable fraction
// of a small burst, so the sampler trades census for a 1-in-N sample —
// statistically identical for a histogram, ~16x cheaper.
const latSampleEvery = 16

// DefaultQueues is the number of RX/TX queue pairs per port, and therefore
// the largest worker count that still scales a single hot port (a NIC-like
// default; NewSwitchQueues configures it).
const DefaultQueues = 8

// FailMode is the switch's controller-loss policy: what the dataplane does
// with controller-dependent packets (ToController verdicts) while the control
// channel is down.  The supervisor flips the mode on disconnect/reconnect;
// the workers read it with one atomic load per punted packet — never on the
// pure forwarding path.
type FailMode uint32

const (
	// FailNormal is the healthy-channel mode: punts flow to the armed
	// rings as usual.
	FailNormal FailMode = iota
	// FailStandalone keeps the dataplane forwarding on its own: installed
	// flows (including the forwarding half of "output:N,controller"
	// verdicts) keep transmitting at full rate, while the punt half is
	// suppressed and counted (PuntSuppressed) instead of queued for a
	// controller that cannot answer.
	FailStandalone
	// FailSecure drops controller-dependent packets entirely: a packet
	// whose verdict punts — a table miss or an explicit controller output,
	// even one that also forwards — is discarded (counted in both
	// PuntSuppressed and Dropped).  Flows with purely local verdicts are
	// unaffected.
	FailSecure
)

// ParseFailMode parses a fail-mode flag value (normal | standalone | secure).
func ParseFailMode(s string) (FailMode, error) {
	switch s {
	case "normal":
		return FailNormal, nil
	case "standalone":
		return FailStandalone, nil
	case "secure":
		return FailSecure, nil
	}
	return FailNormal, fmt.Errorf("dpdk: unknown fail mode %q (want normal, standalone or secure)", s)
}

// String renders the mode the way ParseFailMode reads it.
func (m FailMode) String() string {
	switch m {
	case FailStandalone:
		return "standalone"
	case FailSecure:
		return "secure"
	}
	return "normal"
}

// Ring is a bounded single-producer/single-consumer queue of frames.
type Ring struct {
	buf  [][]byte
	mask uint64
	head atomic.Uint64 // next slot to read
	tail atomic.Uint64 // next slot to write
}

// NewRing creates a ring with capacity rounded up to a power of two.
func NewRing(capacity int) *Ring {
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Ring{buf: make([][]byte, size), mask: uint64(size - 1)}
}

// Capacity returns the usable capacity of the ring.
func (r *Ring) Capacity() int { return len(r.buf) - 1 }

// Len returns the number of frames currently queued.
func (r *Ring) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Enqueue adds one frame, reporting false when the ring is full.
func (r *Ring) Enqueue(frame []byte) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() >= uint64(len(r.buf)-1) {
		return false
	}
	r.buf[tail&r.mask] = frame
	r.tail.Store(tail + 1)
	return true
}

// Dequeue removes one frame, reporting false when the ring is empty.
func (r *Ring) Dequeue() ([]byte, bool) {
	head := r.head.Load()
	if head == r.tail.Load() {
		return nil, false
	}
	frame := r.buf[head&r.mask]
	r.head.Store(head + 1)
	return frame, true
}

// EnqueueBurst adds up to len(frames) frames, returning how many fit.
func (r *Ring) EnqueueBurst(frames [][]byte) int {
	n := 0
	for _, f := range frames {
		if !r.Enqueue(f) {
			break
		}
		n++
	}
	return n
}

// DequeueBurst fills out with up to len(out) frames, returning the count.
func (r *Ring) DequeueBurst(out [][]byte) int {
	n := 0
	for n < len(out) {
		f, ok := r.Dequeue()
		if !ok {
			break
		}
		out[n] = f
		n++
	}
	return n
}

// PortStats are per-port packet counters.
type PortStats struct {
	RxPackets uint64
	TxPackets uint64
	RxDrops   uint64
	TxDrops   uint64
	// RxErrors/TxErrors count I/O syscalls that failed with something other
	// than backpressure (EAGAIN/ENOBUFS) — transient noise and fatal errnos
	// alike.  Simulated backends never report them.
	RxErrors uint64
	TxErrors uint64
}

// Port is a switch port: a thin accounting-and-policy shell around a
// PortBackend, which owns the actual frame I/O (simulated rings by default;
// pcap replay and AF_PACKET sockets for real traffic).  The switch-facing
// queue contract is the backend's: queue q has one consumer (the owning
// worker's RxBurst) and one producer (that worker's TxBurst) at a time.
type Port struct {
	ID uint32
	be PortBackend
	// nq caches be.Queues() so the poll loop's per-queue bound check never
	// makes an interface call.
	nq int
	// inj/slow are the backend's optional extensions, resolved once at
	// construction so the hot paths do plain nil checks instead of type
	// asserts.
	inj  InjectableBackend
	slow SlowPathTransmitter

	// policyDrops counts frames abandoned above the backend — TX-policy
	// overflow, slow-path transmission without a SlowPathTransmitter — and
	// folds into Stats().TxDrops.
	policyDrops atomic.Uint64

	// link is the port's link state (LinkState values), written by the port
	// supervisor and read by every worker once per poll — the workers' whole
	// involvement in the link-state machine is skipping Down ports.  The
	// zero value is LinkUp, so switches without a supervisor behave exactly
	// as before.
	link atomic.Uint32
	// closed makes Close exactly-once at the port layer, so a Switch.Close
	// racing another (or a supervisor shutdown) calls the backend's Close
	// once even though backends are also individually idempotent.
	closed atomic.Bool
}

// PortConfig configures NewPortWithConfig.  The zero value (plus an ID)
// means a single-queue simulated ring port of default ring size.
type PortConfig struct {
	// ID is the 1-based OpenFlow port number.
	ID uint32
	// Backend supplies the packet I/O implementation.  Nil selects a
	// RingBackend built from RingSize and Queues.
	Backend PortBackend
	// RingSize is the per-ring frame capacity of the default ring backend
	// (<= 0 selects 4096); ignored when Backend is set.
	RingSize int
	// Queues is the RX/TX queue-pair count of the default ring backend
	// (<= 0 selects 1); ignored when Backend is set.
	Queues int
}

// defaultRingSize is the ring capacity PortConfig/SwitchConfig fall back to.
const defaultRingSize = 4096

// NewPortWithConfig creates a port driving the configured backend.
func NewPortWithConfig(cfg PortConfig) *Port {
	be := cfg.Backend
	if be == nil {
		size := cfg.RingSize
		if size <= 0 {
			size = defaultRingSize
		}
		be = NewRingBackend(size, cfg.Queues)
	}
	p := &Port{ID: cfg.ID, be: be, nq: be.Queues()}
	if inj, ok := be.(InjectableBackend); ok {
		p.inj = inj
	}
	if slow, ok := be.(SlowPathTransmitter); ok {
		p.slow = slow
	}
	return p
}

// NewPort creates a single-queue simulated-ring port.
//
// Deprecated: use NewPortWithConfig.
func NewPort(id uint32, ringSize int) *Port {
	return NewPortWithConfig(PortConfig{ID: id, RingSize: ringSize, Queues: 1})
}

// NewPortQueues creates a simulated-ring port with the given number of RX/TX
// queue pairs.
//
// Deprecated: use NewPortWithConfig.
func NewPortQueues(id uint32, ringSize, queues int) *Port {
	return NewPortWithConfig(PortConfig{ID: id, RingSize: ringSize, Queues: queues})
}

// Backend returns the port's packet I/O backend.
func (p *Port) Backend() PortBackend { return p.be }

// NumQueues returns the number of RX/TX queue pairs.
func (p *Port) NumQueues() int { return p.nq }

// Injectable reports whether the port's backend accepts injected frames
// (simulated backends; real-I/O backends receive from the outside world).
func (p *Port) Injectable() bool { return p.inj != nil }

// InjectOn places a frame on RX queue q of an injectable backend; q ==
// AutoQueue steers by the frame's symmetric RSS hash, the way a multi-queue
// NIC's RSS does in hardware.  Each queue is single-producer, so one
// goroutine at a time may inject into a given queue; producers that
// precompute the steering pass explicit disjoint queues to shard injection.
// Ports whose backend does not accept injection (real I/O) report false.
func (p *Port) InjectOn(q int, frame []byte) bool {
	if p.inj == nil {
		return false
	}
	return p.inj.InjectOn(q, frame)
}

// Inject places a frame on an RX queue steered by its RSS hash.
//
// Deprecated: use InjectOn with AutoQueue.
func (p *Port) Inject(frame []byte) bool { return p.InjectOn(AutoQueue, frame) }

// InjectQueue places a frame on a specific RX queue.
//
// Deprecated: use InjectOn.
func (p *Port) InjectQueue(q int, frame []byte) bool { return p.InjectOn(q, frame) }

// RxQueueLen returns the number of frames waiting in RX queue q of an
// injectable backend (0 for real-I/O backends, whose queues live outside the
// process).
func (p *Port) RxQueueLen(q int) int {
	if p.inj == nil {
		return 0
	}
	return p.inj.RxQueueLen(q)
}

// Transmit places one frame on TX queue 0 (the single-frame slow path; the
// worker loops use TxBurst instead).
func (p *Port) Transmit(frame []byte) bool {
	one := [1][]byte{frame}
	if p.be.TxBurst(0, one[:]) == 1 {
		return true
	}
	p.policyDrops.Add(1)
	return false
}

// TxBurst transmits a staged burst of frames on TX queue q, counting frames
// the backend did not accept as TX drops (what a NIC does when the
// descriptor ring is full).  It returns how many frames were accepted.
// Worker loops with a backpressure policy use the policy layer instead,
// which retries or spills before counting drops.
func (p *Port) TxBurst(q int, frames [][]byte) int {
	n := p.be.TxBurst(q, frames)
	if n < len(frames) {
		p.policyDrops.Add(uint64(len(frames) - n))
	}
	return n
}

// TransmitSlow transmits a controller-originated (PacketOut) frame outside
// the worker-owned TX queues, keeping those single-producer.  One slow-path
// service at a time may transmit.  Backends without a slow-path lane count
// the frame as a drop.
func (p *Port) TransmitSlow(frame []byte) bool {
	if p.slow == nil {
		p.policyDrops.Add(1)
		return false
	}
	return p.slow.TransmitSlow(frame)
}

// DrainTx empties an injectable backend's TX queues (including the
// slow-path ring), returning the number of frames drained (a traffic sink /
// loopback tester).  Real-I/O backends transmit for real; there is nothing
// to drain and DrainTx returns 0.
func (p *Port) DrainTx() int {
	if p.inj == nil {
		return 0
	}
	return p.inj.DrainTx()
}

// RxBurst receives up to len(out) frames from the port's RX queues in queue
// order (single-threaded harnesses; the workers poll their own queues).
func (p *Port) RxBurst(out [][]byte) int {
	n := 0
	for q := 0; q < p.nq; q++ {
		n += p.be.RxBurst(q, out[n:])
		if n == len(out) {
			break
		}
	}
	return n
}

// Close releases the backend's resources.  Idempotent, and exactly-once
// toward the backend: concurrent Close calls race benignly on the swap and
// only the winner reaches the backend.
func (p *Port) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	return p.be.Close()
}

// Closed reports whether the port was closed (the supervisor stops scanning
// and reopening a closed port).
func (p *Port) Closed() bool { return p.closed.Load() }

// LinkState returns the port's current link state.
func (p *Port) LinkState() LinkState { return LinkState(p.link.Load()) }

// setLink publishes a link-state transition (the port supervisor's side of
// the machine; workers only load).
func (p *Port) setLink(st LinkState) { p.link.Store(uint32(st)) }

// Stats returns a snapshot of the port counters: the backend's I/O counters
// with the switch-side policy drops folded into TxDrops.
func (p *Port) Stats() PortStats {
	st := p.be.Stats()
	st.TxDrops += p.policyDrops.Load()
	return st
}

// Datapath is the interface the workers drive; both the ESWITCH compiled
// datapath and the OVS baseline satisfy it (via small adapters in the public
// API package).
type Datapath interface {
	Process(p *pkt.Packet, v *openflow.Verdict)
}

// BurstDatapath is the optional burst extension of Datapath: a datapath that
// can classify a whole RX burst in one call (the ESWITCH compiled datapath's
// ProcessBurst).  Workers detect it once at switch construction and then
// drive RX burst → ProcessBurst → TX burst instead of per-packet calls.
type BurstDatapath interface {
	Datapath
	ProcessBurst(ps []*pkt.Packet, vs []openflow.Verdict)
}

// Worker is the per-worker handle of a WorkerDatapath: the worker's
// quiescence epoch plus its worker-local resources (meter shard, burst
// scratch).  It is an alias for the anonymous interface so the concrete
// handle type lives with the datapath implementation (core.Worker) without
// an import here.
type Worker = interface {
	Enter()
	Exit()
	// ProcessBurst classifies one burst on the worker's private resources;
	// it must run inside the worker's Enter/Exit bracket.
	ProcessBurst(ps []*pkt.Packet, vs []openflow.Verdict)
}

// WorkerDatapath is the lock-free extension of BurstDatapath: the datapath
// publishes its compiled state through atomic snapshots, workers register a
// handle carrying their worker-local resource plane (epoch, meter shard,
// burst scratch), bracket every poll iteration with Enter/Exit, and classify
// through the handle's ProcessBurst — the zero-lock, zero-atomic-RMW,
// zero-shared-state burst path — while flow-table updates proceed
// concurrently.  The compiled ESWITCH datapath implements it.
type WorkerDatapath interface {
	BurstDatapath
	RegisterWorker() Worker
	UnregisterWorker(Worker)
}

// CacheDatapath is the optional microflow-cache stats extension: a datapath
// whose workers carry per-worker microflow verdict caches reports the folded
// hit/miss/stale counters here, and Switch.Stats surfaces them.  The compiled
// ESWITCH datapath implements it (core.Datapath.FlowCacheCounters).
type CacheDatapath interface {
	FlowCacheCounters() (hits, misses, stale uint64)
}

// MegaCacheDatapath is the optional megaflow-cache stats extension: a
// datapath whose workers carry a second-level masked-match cache behind the
// microflow cache reports the folded hit/miss counters here.  The compiled
// ESWITCH datapath implements it (core.Datapath.MegaflowCounters).
type MegaCacheDatapath interface {
	MegaflowCounters() (hits, misses uint64)
}

// DatapathFunc adapts a function to the Datapath interface.
type DatapathFunc func(p *pkt.Packet, v *openflow.Verdict)

// Process implements Datapath.
func (f DatapathFunc) Process(p *pkt.Packet, v *openflow.Verdict) { f(p, v) }

// WorkerStats are aggregate forwarding counters (folded over the per-worker
// counters on demand).  The cross-counter identities the fold guarantees are
// stated — and machine-checked — in one place: CheckInvariants.
type WorkerStats struct {
	Processed uint64
	Forwarded uint64
	Dropped   uint64
	ToCtrl    uint64
	// TxRetries counts TX enqueue re-attempts for frames that found their
	// TX ring full at least once (block and spill policies); TxDrops counts
	// frames abandoned after the policy's bounded retries (or immediately,
	// under the default drop policy).
	TxRetries uint64
	TxDrops   uint64
	// Punts counts ToController verdicts copied into a slow-path punt ring
	// and PuntDrops those lost to a full ring.  With the rings armed,
	// every punted verdict is exactly one of queued, ring-dropped,
	// degraded-mode-suppressed or storm-filtered:
	//
	//	Punts + PuntDrops + PuntSuppressed + PuntFiltered == ToCtrl
	//
	// which collapses to the original Punts+PuntDrops == ToCtrl whenever
	// the channel is healthy (FailNormal) and the punt filter is off or
	// idle.  All four stay zero with the rings unarmed and the mode normal
	// (punted packets are then counted and discarded).
	Punts     uint64
	PuntDrops uint64
	// PuntSuppressed counts punts withheld by a degraded fail mode
	// (standalone or secure) while the control channel was down.
	PuntSuppressed uint64
	// PuntFiltered counts punts withheld by the per-worker punt-storm
	// filter: the microflow punted recently and its repeat would only
	// crowd the ring (SetPuntFilter).
	PuntFiltered uint64
	// CacheHits/CacheMisses/CacheStale are the microflow verdict cache
	// counters folded over the datapath's workers (zero unless the datapath
	// implements CacheDatapath and has the cache enabled).  CacheStale is
	// the subset of CacheMisses whose probe found a matching key from a
	// retired generation; when the cache is on, CacheHits+CacheMisses
	// equals Processed — every packet is exactly one or the other.
	CacheHits   uint64
	CacheMisses uint64
	CacheStale  uint64
	// MegaHits/MegaMisses are the second-level megaflow (masked-match) cache
	// counters folded over the datapath's workers (zero unless the datapath
	// implements MegaCacheDatapath and has the megaflow cache enabled).  A
	// MegaHit is a microflow miss resolved by the masked-match probe without
	// walking the pipeline; when the megaflow cache is on,
	// MegaHits+MegaMisses equals CacheMisses.
	MegaHits   uint64
	MegaMisses uint64
	// Panics counts datapath panics the workers' containment absorbed, and
	// Quarantined the received frames whose classification those panics
	// aborted (poison frames plus the rest of their burst).  Quarantined
	// frames count in Processed but in none of Forwarded/Dropped/ToCtrl —
	// they were received and then deliberately abandoned.
	Panics      uint64
	Quarantined uint64
	// PortsDown/PortsFlapping snapshot the link-state machine: how many
	// ports the supervisor currently holds Down (not polled) or has labeled
	// Flapping (polled, but recently bouncing).
	PortsDown     uint64
	PortsFlapping uint64
}

// CheckInvariants verifies the cross-counter identities the Stats() fold
// guarantees at rest (workers stopped or idle between polls — counters are
// published once per poll iteration, so a mid-burst snapshot may be torn).
// This is the canonical statement of the invariants; the per-field comments
// above and the scattered subsystem tests all defer to it.
//
// Slow-path accounting (puntRingsArmed true — with the rings unarmed,
// ring-push outcomes are never counted and only the degraded-mode terms can
// advance):
//
//	Punts + PuntDrops + PuntSuppressed + PuntFiltered == ToCtrl
//
// Every punted verdict is exactly one of: queued into a ring, dropped by a
// full ring, suppressed by a degraded fail mode, or withheld by the
// punt-storm filter.  The identity collapses to Punts+PuntDrops == ToCtrl
// whenever the channel stays healthy and the filter is idle.
//
// Microflow cache (engaged — nonzero hit+miss — and no contained panics,
// which abandon bursts between the probe and the tally):
//
//	CacheHits + CacheMisses == Processed
//
// Every packet is exactly a verdict-cache hit or a miss; CacheStale is a
// subset of CacheMisses.
//
// Megaflow cache (engaged — nonzero hit+miss):
//
//	MegaHits + MegaMisses == CacheMisses
//
// Every microflow miss is exactly a masked-match short-circuit or a full
// template walk.
func (st WorkerStats) CheckInvariants(puntRingsArmed bool) error {
	if puntRingsArmed {
		if got := st.Punts + st.PuntDrops + st.PuntSuppressed + st.PuntFiltered; got != st.ToCtrl {
			return fmt.Errorf("dpdk: punt invariant broken: %d queued + %d ring-dropped + %d suppressed + %d filtered = %d != %d to-controller",
				st.Punts, st.PuntDrops, st.PuntSuppressed, st.PuntFiltered, got, st.ToCtrl)
		}
	} else if st.Punts != 0 || st.PuntDrops != 0 {
		return fmt.Errorf("dpdk: %d punts queued / %d ring drops counted with the rings unarmed", st.Punts, st.PuntDrops)
	}
	if st.CacheStale > st.CacheMisses {
		return fmt.Errorf("dpdk: microflow stale count %d exceeds misses %d", st.CacheStale, st.CacheMisses)
	}
	if probes := st.CacheHits + st.CacheMisses; probes > 0 && st.Panics == 0 && probes != st.Processed {
		return fmt.Errorf("dpdk: microflow invariant broken: %d hits + %d misses != %d processed",
			st.CacheHits, st.CacheMisses, st.Processed)
	}
	if probes := st.MegaHits + st.MegaMisses; probes > 0 && probes != st.CacheMisses {
		return fmt.Errorf("dpdk: megaflow invariant broken: %d hits + %d misses != %d microflow misses",
			st.MegaHits, st.MegaMisses, st.CacheMisses)
	}
	return nil
}

// workerCounters are one worker's forwarding counters.  They are updated
// once per poll iteration (not per packet) by their owning worker only; the
// trailing padding keeps each worker's counters on their own cache line so
// Stats() snapshots never false-share with the hot loops.
type workerCounters struct {
	processed    atomic.Uint64
	forwarded    atomic.Uint64
	dropped      atomic.Uint64
	toCtrl       atomic.Uint64
	txRetries    atomic.Uint64
	txDrops      atomic.Uint64
	puntSuppress atomic.Uint64
	puntFiltered atomic.Uint64
	panics       atomic.Uint64
	quarantined  atomic.Uint64
	_            [48]byte
	// lat is the worker's burst-duration histogram (nanoseconds per
	// classifyBurst call), recorded only while latency sampling is armed
	// (Switch.SetLatencySampling) and then only for one burst in
	// latSampleEvery (clock reads are a measurable fraction of a burst, so
	// the sampler decimates; the histogram is a sampled distribution, not a
	// census).  It sits after the padding so the counters above keep their
	// own cache line; the histogram's buckets are single-writer like
	// everything else in the block.
	lat hist.Histogram
}

// Switch ties ports and a datapath together and runs run-to-completion
// forwarding loops over them.
type Switch struct {
	ports []*Port
	dp    Datapath
	// bdp/wdp/cdp are non-nil when the datapath supports native burst
	// processing / registered worker handles / microflow-cache stats; the
	// workers then use the fastest available path.
	bdp   BurstDatapath
	wdp   WorkerDatapath
	cdp   CacheDatapath
	mdp   MegaCacheDatapath
	burst int
	// queues is the widest port's RX/TX queue-pair count (the RX sharding
	// width: workers poll queue indices up to it, skipping narrower ports);
	// minQueues is the narrowest port's, and bounds the worker count so
	// every worker's TX queue index is valid on every port.  Equal unless
	// the backend set is heterogeneous.
	queues    int
	minQueues int
	// txPolicy is what workers do when a TX ring is full (drop | block |
	// spill).  Set it before the first poll; workers read it un-synchronized.
	txPolicy TxPolicy
	// punt, when armed, holds one slow-path punt ring per TX-queue index, so
	// every worker (and the pooled PollOnce state, which owns queue 0's TX
	// side already) pushes to its own single-producer ring.  Arm it before
	// the first poll; workers read it un-synchronized.
	punt []*slowpath.Ring
	// failMode is the controller-loss policy (FailMode); the supervisor
	// stores it, workers load it once per PUNTED packet — the pure
	// forwarding path never reads it.
	failMode atomic.Uint32
	// puntFilterSize/puntFilterWindow configure the per-worker punt-storm
	// filter (SetPuntFilter); workers materialize their private filter
	// lazily, like the punt rings.  Size is a power of two (mask = size-1).
	puntFilterSize   int
	puntFilterWindow uint64
	// reinjectPunts counts output:TABLE PacketOut frames the pipeline punted
	// right back (see packetout.go).
	reinjectPunts atomic.Uint64

	// mu guards counter registration; the forwarding loops never touch
	// it.  The acquisition counter backs the zero-lock acceptance tests.
	mu lockcount.Mutex
	// counters holds the live workers' statistics blocks and base the
	// folded totals of retired ones, so Stats stays monotonic while the
	// registration list stays bounded by the number of live workers.
	counters []*workerCounters
	base     WorkerStats
	// latBase folds retired workers' burst-duration histograms, mirroring
	// base for the counters.
	latBase hist.Snapshot
	// latSample arms the per-burst latency sampling (SetLatencySampling);
	// workers load it once per poll iteration, never per packet.
	latSample atomic.Bool
	// pollCounters is the single registered block shared by every pooled
	// PollOnce state, so pool evictions cannot grow the registration list.
	pollCounters *workerCounters
	// hbs is the live RunWorkers workers' heartbeat blocks, published as a
	// copy-on-write slice so the port supervisor's watchdog scan reads it
	// without touching mu (pooled PollOnce states carry no heartbeat — their
	// callers own their own liveness).
	hbs atomic.Pointer[[]*workerHeartbeat]

	// wsPool recycles per-worker burst state for callers that use PollOnce
	// directly instead of RunWorkers.
	wsPool sync.Pool
}

// SwitchConfig configures NewSwitchWithConfig.
type SwitchConfig struct {
	// Backends, when non-empty, supplies one packet I/O backend per port
	// (port IDs 1..len(Backends) in order) and NumPorts/RingSize/Queues are
	// ignored.  When empty, the switch gets NumPorts simulated-ring ports.
	Backends []PortBackend
	// NumPorts is the simulated-ring port count when Backends is empty.
	NumPorts int
	// RingSize is the simulated ring capacity (<= 0 selects 4096).
	RingSize int
	// Queues is the RX/TX queue-pair count per simulated port (<= 0 selects
	// DefaultQueues) — the maximum worker count that still scales one hot
	// port.
	Queues int
	// Burst is the RX/TX burst size (<= 0 selects DefaultBurst).
	Burst int
}

// NewSwitchWithConfig creates a switch over the configured ports.  When dp
// also implements BurstDatapath (the compiled ESWITCH datapath does), the
// worker loops use the burst fast path automatically; when it implements
// WorkerDatapath they additionally run the zero-lock path on registered
// per-worker resources (epoch, meter shard, burst scratch).
func NewSwitchWithConfig(dp Datapath, cfg SwitchConfig) *Switch {
	burst := cfg.Burst
	if burst <= 0 {
		burst = DefaultBurst
	}
	s := &Switch{dp: dp, burst: burst}
	if bdp, ok := dp.(BurstDatapath); ok {
		s.bdp = bdp
	}
	if wdp, ok := dp.(WorkerDatapath); ok {
		s.wdp = wdp
	}
	if cdp, ok := dp.(CacheDatapath); ok {
		s.cdp = cdp
	}
	if mdp, ok := dp.(MegaCacheDatapath); ok {
		s.mdp = mdp
	}
	if len(cfg.Backends) > 0 {
		for i, be := range cfg.Backends {
			s.ports = append(s.ports, NewPortWithConfig(PortConfig{ID: uint32(i + 1), Backend: be}))
		}
	} else {
		queues := cfg.Queues
		if queues < 1 {
			queues = DefaultQueues
		}
		for i := 0; i < cfg.NumPorts; i++ {
			s.ports = append(s.ports, NewPortWithConfig(PortConfig{
				ID: uint32(i + 1), RingSize: cfg.RingSize, Queues: queues,
			}))
		}
	}
	// The RX sharding width is the widest port (narrower ports are skipped
	// per queue); the worker clamp is the narrowest, so every worker's TX
	// queue exists on every port.  A port-less switch keeps the configured
	// width so punt-ring geometry still matches later expectations.
	s.queues, s.minQueues = cfg.Queues, cfg.Queues
	if s.queues < 1 {
		s.queues, s.minQueues = 1, 1
	}
	for i, p := range s.ports {
		if i == 0 {
			s.queues, s.minQueues = p.nq, p.nq
			continue
		}
		if p.nq > s.queues {
			s.queues = p.nq
		}
		if p.nq < s.minQueues {
			s.minQueues = p.nq
		}
	}
	s.pollCounters = s.registerCounters()
	s.wsPool.New = func() any { return s.newWorkerState(allQueues(s.queues), 0, s.pollCounters) }
	return s
}

// NewSwitch creates a switch with numPorts simulated-ring ports of
// DefaultQueues RX/TX queue pairs each.
//
// Deprecated: use NewSwitchWithConfig.
func NewSwitch(dp Datapath, numPorts, ringSize int) *Switch {
	return NewSwitchWithConfig(dp, SwitchConfig{NumPorts: numPorts, RingSize: ringSize, Queues: DefaultQueues})
}

// NewSwitchQueues is NewSwitch with an explicit number of RX/TX queue pairs
// per port.
//
// Deprecated: use NewSwitchWithConfig.
func NewSwitchQueues(dp Datapath, numPorts, ringSize, queues int) *Switch {
	if queues < 1 {
		queues = 1
	}
	return NewSwitchWithConfig(dp, SwitchConfig{NumPorts: numPorts, RingSize: ringSize, Queues: queues})
}

// Close closes every port's backend, returning the first error.  Safe to
// call after stopping the workers, and safe to race them or another Close:
// each port closes its backend exactly once, and backends return 0 from
// bursts after Close rather than panic.
func (s *Switch) Close() error {
	var first error
	for _, p := range s.ports {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func allQueues(n int) []int {
	qs := make([]int, n)
	for i := range qs {
		qs[i] = i
	}
	return qs
}

// workerState is one worker's private memory plane: the RX frame burst, the
// packet structs wrapping it, the verdicts, the worker's queue assignment,
// the per-port TX staging buffers, the per-port TX spill backlog and the
// worker's statistics counters.  Everything is allocated once per worker —
// the buffers are worker-owned freelists that retain their capacity across
// polls — so the polling loop is allocation-free in the steady state and
// shares no mutable memory with any other worker.
type workerState struct {
	frames   [][]byte
	packets  []pkt.Packet
	pkts     []*pkt.Packet
	verdicts []openflow.Verdict
	// queues are the RX queue indices this worker owns on every port; txq
	// is the TX queue index it owns (one worker per queue keeps every ring
	// single-producer/single-consumer).
	queues []int
	txq    int
	// txStage stages outgoing frames per output port; it is flushed with
	// one TX burst per port at the end of each poll iteration.
	txStage [][][]byte
	// txSpill carries per-port frames whose TX ring was full under the
	// spill policy; they are re-attempted (in receive order, ahead of newly
	// staged frames) on subsequent polls.  spillPending caches the total
	// backlog so idle polls know whether a flush is still owed.
	txSpill      [][][]byte
	spillPending int
	// punt is the worker's slow-path punt ring (nil until the switch arms
	// punt rings; resolved lazily so states built before ArmPuntRings pick
	// their ring up on the next poll).
	punt *slowpath.Ring
	// puntFilter is the worker's private recently-punted filter (nil until
	// SetPuntFilter arms it; adopted lazily like the punt ring): a
	// direct-mapped table of (flow hash, last-punt poll) slots consulted
	// only on the punt path.  pollSeq is the worker's poll-iteration clock
	// the filter's recency window is measured in.
	puntFilter []puntFilterSlot
	pollSeq    uint64
	// latTick decimates burst-duration sampling: with sampling armed, one
	// burst in latSampleEvery is timed (starting with the first, so short
	// tests still observe samples).
	latTick uint64
	// worker is the datapath's registered worker handle (nil when the
	// datapath does not support worker registration — or when this state
	// serves anonymous PollOnce callers, which must use the self-pinning
	// ProcessBurst instead).
	worker   Worker
	counters *workerCounters
	// hb is the worker's watchdog heartbeat block (nil for pooled PollOnce
	// states); the worker is its only writer.
	hb *workerHeartbeat
	// staged counts how many of the current burst's frames have completed
	// stage(), so panic containment knows how much of the burst to
	// quarantine.
	staged int
	// spin seeds the backoff's pause loop; keeping it per-worker (and
	// heap-reachable, which defeats dead-code elimination) means idle
	// workers share no cache line.
	spin uint64
}

// puntFilterSlot is one entry of the per-worker punt-storm filter.  seen is
// the worker's pollSeq at the last punt of this hash (0 = never; pollSeq
// starts at 1).
type puntFilterSlot struct {
	hash uint32
	seen uint64
}

// registerCounters allocates one statistics block and adds it to the fold
// set.
func (s *Switch) registerCounters() *workerCounters {
	c := &workerCounters{}
	s.mu.Lock()
	s.counters = append(s.counters, c)
	s.mu.Unlock()
	return c
}

// retireCounters folds a stopped worker's counts into the base totals and
// drops its block from the registration list.
func (s *Switch) retireCounters(c *workerCounters) {
	s.mu.Lock()
	s.base.Processed += c.processed.Load()
	s.base.Forwarded += c.forwarded.Load()
	s.base.Dropped += c.dropped.Load()
	s.base.ToCtrl += c.toCtrl.Load()
	s.base.TxRetries += c.txRetries.Load()
	s.base.TxDrops += c.txDrops.Load()
	s.base.PuntSuppressed += c.puntSuppress.Load()
	s.base.PuntFiltered += c.puntFiltered.Load()
	s.base.Panics += c.panics.Load()
	s.base.Quarantined += c.quarantined.Load()
	c.lat.AddTo(&s.latBase)
	kept := s.counters[:0]
	for _, o := range s.counters {
		if o != c {
			kept = append(kept, o)
		}
	}
	s.counters = kept
	s.mu.Unlock()
}

// newWorkerState builds one worker's reusable state; counters may be a
// shared pre-registered block (the PollOnce pool) or nil to register a
// dedicated one (RunWorkers).
func (s *Switch) newWorkerState(queues []int, txq int, counters *workerCounters) *workerState {
	ws := &workerState{
		frames:   make([][]byte, s.burst),
		packets:  make([]pkt.Packet, s.burst),
		pkts:     make([]*pkt.Packet, s.burst),
		verdicts: make([]openflow.Verdict, s.burst),
		queues:   queues,
		txq:      txq,
		txStage:  make([][][]byte, len(s.ports)),
		txSpill:  make([][][]byte, len(s.ports)),
	}
	for i := range ws.packets {
		ws.pkts[i] = &ws.packets[i]
	}
	if counters == nil {
		counters = s.registerCounters()
	}
	ws.counters = counters
	return ws
}

// Port returns the port with the given 1-based ID.
func (s *Switch) Port(id uint32) (*Port, error) {
	if id == 0 || int(id) > len(s.ports) {
		return nil, fmt.Errorf("dpdk: no port %d", id)
	}
	return s.ports[id-1], nil
}

// Ports returns all ports.
func (s *Switch) Ports() []*Port { return s.ports }

// NumQueues returns the number of RX/TX queue pairs per port.
func (s *Switch) NumQueues() int { return s.queues }

// ClampWorkers returns the worker count RunWorkers will actually start for a
// requested count: at least one, at most the narrowest port's queue count
// (so every worker's TX queue index exists on every port).
func (s *Switch) ClampWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	if n > s.minQueues {
		n = s.minQueues
	}
	return n
}

// MutexOps returns how many times the switch's registration mutex has been
// acquired; tests assert it stays flat across steady-state polling.  (Note
// Stats itself acquires it.)
func (s *Switch) MutexOps() uint64 { return s.mu.Ops() }

// ArmPuntRings gives every TX-queue index (and therefore every worker) a
// bounded slow-path punt ring of the given capacity and per-slot frame size
// (slowpath defaults when <= 0): from then on every ToController verdict is
// copied — frame, in-port, punt reason, originating table — into the
// observing worker's own ring, drop-on-full, instead of being discarded.
// Arm before the first poll; the returned rings are what a slowpath.Service
// drains.  Calling it again replaces the rings (anything still queued in the
// old ones is abandoned), so arm once per switch lifetime in practice.
//
// A ring whose usable capacity is below the RX burst size is rejected: a
// punt burst larger than the ring lets the burst's leading flows monopolize
// the slots pass after pass while every flow behind them drops — a discovery
// livelock for reactive controllers, not just lost PacketIns.
func (s *Switch) ArmPuntRings(capacity, frameCap int) ([]*slowpath.Ring, error) {
	rings := s.armPuntRings(capacity, frameCap)
	if usable := rings[0].Capacity(); usable < s.burst {
		s.punt = nil
		return nil, fmt.Errorf("dpdk: punt ring capacity %d is below the RX burst (%d): a burst-sized punt wave would livelock flow discovery; size rings >= the burst", usable, s.burst)
	}
	return rings, nil
}

// armPuntRings is ArmPuntRings without the burst-size check; tests that
// exercise deliberate ring overflow use it in-package.
func (s *Switch) armPuntRings(capacity, frameCap int) []*slowpath.Ring {
	if capacity <= 0 {
		capacity = slowpath.DefaultRingCapacity
	}
	rings := make([]*slowpath.Ring, s.queues)
	sample := s.latSample.Load()
	for i := range rings {
		rings[i] = slowpath.NewRing(capacity, frameCap)
		rings[i].SetLatencySampling(sample)
	}
	s.punt = rings
	return rings
}

// PuntRings returns the armed punt rings (nil when unarmed).
func (s *Switch) PuntRings() []*slowpath.Ring { return s.punt }

// SetFailMode selects the controller-loss policy (see FailMode); the
// supervisor flips it on disconnect/reconnect.  Safe to call while workers
// run: it is one atomic store, observed by each worker at its next punted
// packet.
func (s *Switch) SetFailMode(m FailMode) { s.failMode.Store(uint32(m)) }

// FailMode returns the current controller-loss policy.
func (s *Switch) FailMode() FailMode { return FailMode(s.failMode.Load()) }

// SetPuntFilter arms the per-worker punt-storm filter: each worker gets a
// private direct-mapped table of `entries` (rounded up to a power of two)
// recently-punted flow hashes, and a microflow that punted within the last
// `windowPolls` poll iterations has its repeat punts withheld (counted in
// PuntFiltered) instead of queued.  The first punt of every microflow always
// passes, so one elephant miss cannot monopolize the punt rings or the
// PacketIn token bucket while distinct flows are still being discovered.
// Hash collisions evict the previous occupant (a colliding flow merely
// re-punts), and false filtering is bounded by the window.  Arm before the
// first poll; entries <= 0 disarms.
func (s *Switch) SetPuntFilter(entries, windowPolls int) {
	if entries <= 0 {
		s.puntFilterSize = 0
		return
	}
	size := 1
	for size < entries {
		size <<= 1
	}
	if windowPolls < 1 {
		windowPolls = 1
	}
	s.puntFilterSize = size
	s.puntFilterWindow = uint64(windowPolls)
}

// Stats folds the per-worker counters into aggregate statistics.
func (s *Switch) Stats() WorkerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.base
	for _, c := range s.counters {
		t.Processed += c.processed.Load()
		t.Forwarded += c.forwarded.Load()
		t.Dropped += c.dropped.Load()
		t.ToCtrl += c.toCtrl.Load()
		t.TxRetries += c.txRetries.Load()
		t.TxDrops += c.txDrops.Load()
		t.PuntSuppressed += c.puntSuppress.Load()
		t.PuntFiltered += c.puntFiltered.Load()
		t.Panics += c.panics.Load()
		t.Quarantined += c.quarantined.Load()
	}
	// The link-state snapshot comes straight off the ports (atomic loads; the
	// supervisor owns the transitions).
	for _, p := range s.ports {
		switch LinkState(p.link.Load()) {
		case LinkDown:
			t.PortsDown++
		case LinkFlapping:
			t.PortsFlapping++
		}
	}
	// The microflow-cache counters live with the datapath's workers (the
	// cache is part of the worker-local resource plane, not the substrate);
	// fold them in so one Stats call tells the whole forwarding story.
	if s.cdp != nil {
		t.CacheHits, t.CacheMisses, t.CacheStale = s.cdp.FlowCacheCounters()
	}
	if s.mdp != nil {
		t.MegaHits, t.MegaMisses = s.mdp.MegaflowCounters()
	}
	// Punt accounting lives in the rings themselves (single-writer mirrors),
	// so the fold needs no registration churn as workers come and go.
	for _, r := range s.punt {
		t.Punts += r.Pushed()
		t.PuntDrops += r.Drops()
	}
	return t
}

// SetLatencySampling arms (or disarms) the telemetry plane's latency
// histograms: per-worker burst classification duration and, on every armed
// punt ring, push→pop punt queueing latency.  Off by default — the worker
// path pays nothing until the plane is armed — and safe to flip while
// workers run: each worker reads the gate once per poll iteration with one
// atomic load, and with sampling on the extra per-burst cost is two clock
// reads and two atomic adds, preserving the zero-lock/zero-alloc contract.
func (s *Switch) SetLatencySampling(on bool) {
	s.latSample.Store(on)
	for _, r := range s.punt {
		r.SetLatencySampling(on)
	}
}

// LatencySampling reports whether latency sampling is currently armed.
func (s *Switch) LatencySampling() bool { return s.latSample.Load() }

// BurstLatency folds the per-worker burst-duration histograms (nanoseconds
// per classifyBurst call) over live and retired workers.  All zero until
// SetLatencySampling(true).
func (s *Switch) BurstLatency() hist.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.latBase
	for _, c := range s.counters {
		c.lat.AddTo(&t)
	}
	return t
}

// PuntLatency folds the punt rings' queueing-latency histograms
// (nanoseconds from a worker's Push to the slow-path service's Pop).  All
// zero until SetLatencySampling(true) — and with the rings unarmed.
func (s *Switch) PuntLatency() hist.Snapshot {
	var t hist.Snapshot
	for _, r := range s.punt {
		r.LatencyAddTo(&t)
	}
	return t
}

// PollOnce performs one run-to-completion iteration over all queues of the
// given ports: receive a burst from each, classify (through the burst fast
// path when the datapath supports it), and transmit.  It returns the number
// of packets processed.  Passing nil polls every port.  PollOnce is a
// single-threaded convenience; concurrent forwarding uses RunWorkers.
func (s *Switch) PollOnce(ports []*Port) int {
	ws := s.wsPool.Get().(*workerState)
	n := s.pollPorts(ws, ports)
	// A pooled state must not carry a spill backlog: the pool may drop the
	// state at any GC, which would lose the frames without accounting.
	// PollOnce therefore makes the final attempt immediately and counts the
	// remainder as drops; the carried-across-polls behaviour of the spill
	// policy belongs to dedicated RunWorkers workers, whose state is stable.
	if ws.spillPending > 0 {
		s.abandonSpill(ws)
	}
	s.wsPool.Put(ws)
	return n
}

// pollPorts is one poll iteration over caller-owned worker state: for every
// port, drain a burst from each RX queue the worker owns, classify it, stage
// the outgoing frames, then flush the staging buffers with one TX burst per
// port and fold the iteration's tallies into the worker's counters.  The
// whole iteration runs inside the worker's epoch (when the datapath has
// one), takes no locks, and — after warm-up — performs no allocations.
func (s *Switch) pollPorts(ws *workerState, ports []*Port) int {
	if ports == nil {
		ports = s.ports
	}
	if ws.punt == nil && s.punt != nil {
		// Rings armed after this state was built: adopt the worker's ring
		// (one nil-check per poll, nothing on the per-packet path).
		ws.punt = s.punt[ws.txq]
	}
	if ws.puntFilter == nil && s.puntFilterSize > 0 {
		// Same lazy adoption for the punt-storm filter: a one-time
		// allocation per worker state, off the per-packet path.
		ws.puntFilter = make([]puntFilterSlot, s.puntFilterSize)
	}
	// The filter's recency clock: one increment per poll iteration, so a
	// window of N polls corresponds to roughly N bursts of headroom.
	ws.pollSeq++
	// The watchdog heartbeat: one counter bump per poll plus a store of the
	// port being polled (so a stall can be blamed), all single-writer on the
	// worker's own padded cache line.
	hb := ws.hb
	if hb != nil {
		hb.beats.Add(1)
	}
	if ws.worker != nil {
		ws.worker.Enter()
	}
	total := 0
	var tal stageTallies
	// One sampling-gate load per poll iteration; with sampling armed one
	// burst in latSampleEvery pays two clock reads and two atomic adds —
	// still zero-lock and zero-alloc, and <1% of the burst budget.
	sample := s.latSample.Load()
	for _, port := range ports {
		// The port supervisor parks failed ports Down; skipping them here is
		// the workers' entire involvement in the link-state machine (one
		// atomic load per port per poll; Flapping ports keep forwarding).
		if port.link.Load() == uint32(LinkDown) {
			continue
		}
		if hb != nil {
			hb.polling.Store(uint64(port.ID))
		}
		for _, q := range ws.queues {
			if q >= port.nq {
				continue
			}
			n := port.be.RxBurst(q, ws.frames)
			if n == 0 {
				continue
			}
			if sample && ws.latTick%latSampleEvery == 0 {
				ws.latTick++
				t0 := time.Now()
				s.classifyBurst(ws, port, n, &tal)
				ws.counters.lat.Observe(uint64(time.Since(t0)))
			} else {
				if sample {
					ws.latTick++
				}
				s.classifyBurst(ws, port, n, &tal)
			}
			total += n
		}
	}
	if hb != nil {
		hb.polling.Store(0)
	}
	// The epoch bracket covers only classification: the TX flush (which may
	// back off for a while under the block policy) and the counter folds
	// touch nothing but rings and worker-local memory, so exiting first
	// keeps flow-mod grace periods short even when TX is backed up.
	if ws.worker != nil {
		ws.worker.Exit()
	}
	if total > 0 || ws.spillPending > 0 {
		s.flushTx(ws)
	}
	if total > 0 {
		ws.counters.processed.Add(uint64(total))
		if tal.forwarded > 0 {
			ws.counters.forwarded.Add(tal.forwarded)
		}
		if tal.dropped > 0 {
			ws.counters.dropped.Add(tal.dropped)
		}
		if tal.toCtrl > 0 {
			ws.counters.toCtrl.Add(tal.toCtrl)
		}
		if tal.puntSuppress > 0 {
			ws.counters.puntSuppress.Add(tal.puntSuppress)
		}
		if tal.puntFiltered > 0 {
			ws.counters.puntFiltered.Add(tal.puntFiltered)
		}
	}
	return total
}

// classifyBurst classifies one RX burst and stages its verdicts, wrapped in
// panic containment: a datapath panic (a poison frame tripping a parser or
// template bug) quarantines the burst's unstaged frames — counted, neither
// forwarded nor dropped — and the worker survives to poll the next queue.
// The containment is a method-value defer (open-coded, no allocation), so
// the steady-state burst path stays zero-lock and zero-alloc.
func (s *Switch) classifyBurst(ws *workerState, port *Port, n int, tal *stageTallies) {
	ws.staged = 0
	defer ws.containPanic(n)
	if s.bdp != nil {
		// Burst fast path: wrap the RX burst and classify it in one call —
		// lock-free when the worker holds a registered handle (its Enter
		// pins the snapshot).
		for i := 0; i < n; i++ {
			ws.packets[i] = pkt.Packet{Data: ws.frames[i], InPort: port.ID}
		}
		if ws.worker != nil {
			// The worker's Enter pinned the snapshot, so the zero-lock,
			// worker-local-resource path is safe under concurrent updates.
			ws.worker.ProcessBurst(ws.pkts[:n], ws.verdicts[:n])
		} else {
			// Anonymous callers (PollOnce) go through the self-pinning burst
			// entry point.
			s.bdp.ProcessBurst(ws.pkts[:n], ws.verdicts[:n])
		}
		for i := 0; i < n; i++ {
			s.stage(ws, &ws.verdicts[i], ws.frames[i], port.ID, tal)
			ws.staged++
		}
	} else {
		for i := 0; i < n; i++ {
			ws.packets[0] = pkt.Packet{Data: ws.frames[i], InPort: port.ID}
			s.dp.Process(&ws.packets[0], &ws.verdicts[0])
			s.stage(ws, &ws.verdicts[0], ws.frames[i], port.ID, tal)
			ws.staged++
		}
	}
}

// containPanic is classifyBurst's deferred recovery: the poison frame and
// whatever of its burst had not completed staging are quarantined.  The
// worker's epoch bracket (Enter/Exit in pollPorts) stays balanced because
// the panic never escapes the bracket.
func (ws *workerState) containPanic(n int) {
	if r := recover(); r != nil {
		ws.counters.panics.Add(1)
		if q := n - ws.staged; q > 0 {
			ws.counters.quarantined.Add(uint64(q))
		}
	}
}

// stageTallies are one poll iteration's verdict counts, folded into the
// worker's counters once at the end of the iteration.
type stageTallies struct {
	forwarded    uint64
	dropped      uint64
	toCtrl       uint64
	puntSuppress uint64
	puntFiltered uint64
}

// stage records one verdict: forwarded frames are appended to the per-port
// TX staging buffers (flushed in bursts at the end of the poll iteration),
// punted frames are copied into the worker's slow-path punt ring (when one
// is armed), and the iteration-local tallies are bumped.  Forwarding and
// punting are independent dimensions of a verdict — "output:2,controller"
// both transmits and punts, counting once in each of forwarded and toCtrl —
// so this is a pair of tests, not a three-way switch.
//
// Punted packets additionally pass through the failure plane, none of which
// costs the pure forwarding path anything: under fail-secure the whole
// packet (including its forwarding half) is discarded, under fail-standalone
// the punt half is suppressed while forwarding proceeds, and in normal mode
// the punt-storm filter may withhold a repeat punt of a recently-punted
// microflow.  Every suppressed/filtered punt is counted, preserving
// Punts+PuntDrops+PuntSuppressed+PuntFiltered == ToCtrl.
func (s *Switch) stage(ws *workerState, v *openflow.Verdict, frame []byte, inPort uint32, tal *stageTallies) {
	fwd := v.Forwarded()
	punt := v.ToController
	var mode FailMode
	if punt {
		tal.toCtrl++
		mode = FailMode(s.failMode.Load())
		if mode == FailSecure {
			// Controller-dependent packet with no controller: discard it
			// outright, forwarding half included.
			tal.puntSuppress++
			tal.dropped++
			return
		}
	}
	if fwd {
		tal.forwarded++
		for _, out := range v.OutPorts {
			if out > 0 && int(out) <= len(ws.txStage) {
				ws.txStage[out-1] = append(ws.txStage[out-1], frame)
			}
		}
	}
	if punt {
		switch {
		case mode == FailStandalone:
			// Installed flows keep forwarding (handled above); the punt
			// half waits for the channel to come back.
			tal.puntSuppress++
		case ws.punt != nil:
			if ws.puntFilter != nil && ws.puntRepeats(frame, s.puntFilterWindow) {
				tal.puntFiltered++
				break
			}
			// The ring copies the frame into its pre-allocated slot buffer
			// (drop-on-full, counted by the ring), so the recycled RX frame
			// can be reused — or transmitted above — immediately.
			ws.punt.Push(frame, inPort, v.PuntTable, v.PuntReason)
		}
	}
	if !fwd && !punt {
		tal.dropped++
	}
}

// puntRepeats consults and updates the worker's punt-storm filter: it
// reports true when this frame's microflow already punted within the last
// `window` polls.  A miss (first punt, expired entry, or a colliding hash
// evicting the previous occupant) records the flow and passes the punt.
// The hash is computed only for punted packets — by definition off the fast
// path — and the filter is worker-private, so this takes no locks and
// allocates nothing.
func (ws *workerState) puntRepeats(frame []byte, window uint64) bool {
	h := pkt.RSSHash(frame)
	slot := &ws.puntFilter[h&uint32(len(ws.puntFilter)-1)]
	if slot.hash == h && slot.seen != 0 && ws.pollSeq-slot.seen <= window {
		slot.seen = ws.pollSeq // a suppressed repeat keeps the entry fresh
		return true
	}
	slot.hash = h
	slot.seen = ws.pollSeq
	return false
}

// flushTx drains the worker's TX staging buffers (and, under the spill
// policy, its spill backlog), one EnqueueBurst per output port, preserving
// receive order within the worker's stream.  What happens when a TX ring is
// full is decided by the switch's TxPolicy; see txpolicy.go.
func (s *Switch) flushTx(ws *workerState) {
	pol := s.txPolicy
	var retries, drops uint64
	for pi, staged := range ws.txStage {
		spill := ws.txSpill[pi]
		if len(staged) == 0 && len(spill) == 0 {
			continue
		}
		port := s.ports[pi]
		if pol == TxSpill {
			ws.txSpill[pi] = s.flushSpill(ws, port, spill, staged, &retries, &drops)
		} else {
			sent := port.txEnqueue(ws.txq, staged)
			if sent < len(staged) && pol == TxBlock {
				// Bounded backoff: re-attempt the remainder, pausing a
				// little longer each round, before giving up and
				// counting drops.
				for attempt := 1; attempt <= txRetryLimit && sent < len(staged); attempt++ {
					ws.txBackoff(attempt)
					retries += uint64(len(staged) - sent)
					sent += port.txEnqueue(ws.txq, staged[sent:])
				}
			}
			if over := len(staged) - sent; over > 0 {
				drops += uint64(over)
				port.countTxDrops(over)
			}
		}
		ws.txStage[pi] = ws.txStage[pi][:0]
	}
	ws.spillPending = 0
	if pol == TxSpill {
		for _, sp := range ws.txSpill {
			ws.spillPending += len(sp)
		}
	}
	if retries > 0 {
		ws.counters.txRetries.Add(retries)
	}
	if drops > 0 {
		ws.counters.txDrops.Add(drops)
	}
}

// idleBackoff is the workers' idle policy: a short pause-loop spin for the
// first empty polls (latency stays minimal when traffic is merely bursty),
// then cooperative yields so producers are not starved on small machines,
// then brief sleeps once the port set looks genuinely idle.
func (ws *workerState) idleBackoff(idle int) {
	switch {
	case idle < 8:
		x := ws.spin
		for i := 0; i < idle*16; i++ {
			x = x*2862933555777941757 + 3037000493
		}
		ws.spin = x
	case idle < 1024:
		runtime.Gosched()
	default:
		time.Sleep(20 * time.Microsecond)
	}
}

// RunWorkers starts one run-to-completion goroutine ("core") per worker and
// returns a stop function.  Worker w owns RX queue indices q ≡ w (mod
// workers) and TX queue w of every port, so a single hot port's RSS-spread
// traffic scales across all workers while every ring keeps one producer and
// one consumer.  numWorkers is clamped to the per-port queue count.  Each
// worker busy-polls its queues with an idle backoff until stopped.
func (s *Switch) RunWorkers(numWorkers int) (stop func()) {
	numWorkers = s.ClampWorkers(numWorkers)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < numWorkers; w++ {
		var queues []int
		for q := w; q < s.queues; q += numWorkers {
			queues = append(queues, q)
		}
		wg.Add(1)
		go func(queues []int, txq int) {
			defer wg.Done()
			ws := s.newWorkerState(queues, txq, nil)
			defer s.retireCounters(ws.counters)
			ws.hb = s.registerHeartbeat()
			defer s.retireHeartbeat(ws.hb)
			if s.wdp != nil {
				ws.worker = s.wdp.RegisterWorker()
				defer s.wdp.UnregisterWorker(ws.worker)
			}
			// On shutdown, make one last attempt at any spill backlog,
			// then account what is still stuck as drops.
			defer s.abandonSpill(ws)
			idle := 0
			for {
				select {
				case <-done:
					return
				default:
				}
				if s.pollPorts(ws, nil) == 0 {
					idle++
					ws.idleBackoff(idle)
				} else {
					idle = 0
				}
			}
		}(queues, w)
	}
	return func() {
		close(done)
		wg.Wait()
	}
}
