// Package dpdk is the in-memory dataplane substrate standing in for the
// Intel DPDK environment of the paper's prototype (§4.2): ports backed by
// single-producer/single-consumer rings, burst-oriented receive and transmit,
// and run-to-completion worker loops that can be sharded over multiple cores
// (the Fig. 19 scalability experiment).
//
// No kernel-bypass I/O happens here — the point of the substrate is to drive
// the switch datapaths with minimum-size frames at memory speed and to
// account for the fixed per-packet I/O cost the way the paper's model does.
package dpdk

import (
	"fmt"
	"sync"
	"sync/atomic"

	"eswitch/internal/openflow"
	"eswitch/internal/pkt"
)

// DefaultBurst is the burst size used by the RX/TX loops (DPDK's customary
// 32-packet bursts).
const DefaultBurst = 32

// Ring is a bounded single-producer/single-consumer queue of frames.
type Ring struct {
	buf  [][]byte
	mask uint64
	head atomic.Uint64 // next slot to read
	tail atomic.Uint64 // next slot to write
}

// NewRing creates a ring with capacity rounded up to a power of two.
func NewRing(capacity int) *Ring {
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Ring{buf: make([][]byte, size), mask: uint64(size - 1)}
}

// Capacity returns the usable capacity of the ring.
func (r *Ring) Capacity() int { return len(r.buf) - 1 }

// Len returns the number of frames currently queued.
func (r *Ring) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Enqueue adds one frame, reporting false when the ring is full.
func (r *Ring) Enqueue(frame []byte) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() >= uint64(len(r.buf)-1) {
		return false
	}
	r.buf[tail&r.mask] = frame
	r.tail.Store(tail + 1)
	return true
}

// Dequeue removes one frame, reporting false when the ring is empty.
func (r *Ring) Dequeue() ([]byte, bool) {
	head := r.head.Load()
	if head == r.tail.Load() {
		return nil, false
	}
	frame := r.buf[head&r.mask]
	r.head.Store(head + 1)
	return frame, true
}

// EnqueueBurst adds up to len(frames) frames, returning how many fit.
func (r *Ring) EnqueueBurst(frames [][]byte) int {
	n := 0
	for _, f := range frames {
		if !r.Enqueue(f) {
			break
		}
		n++
	}
	return n
}

// DequeueBurst fills out with up to len(out) frames, returning the count.
func (r *Ring) DequeueBurst(out [][]byte) int {
	n := 0
	for n < len(out) {
		f, ok := r.Dequeue()
		if !ok {
			break
		}
		out[n] = f
		n++
	}
	return n
}

// PortStats are per-port packet counters.
type PortStats struct {
	RxPackets uint64
	TxPackets uint64
	RxDrops   uint64
	TxDrops   uint64
}

// Port is a switch port: an RX ring the traffic source fills and a TX ring
// the datapath fills.
type Port struct {
	ID uint32
	rx *Ring
	tx *Ring

	rxPackets atomic.Uint64
	txPackets atomic.Uint64
	rxDrops   atomic.Uint64
	txDrops   atomic.Uint64
}

// NewPort creates a port with the given ring sizes.
func NewPort(id uint32, ringSize int) *Port {
	return &Port{ID: id, rx: NewRing(ringSize), tx: NewRing(ringSize)}
}

// Inject places a frame on the port's RX ring (what a NIC or generator does).
func (p *Port) Inject(frame []byte) bool {
	if p.rx.Enqueue(frame) {
		p.rxPackets.Add(1)
		return true
	}
	p.rxDrops.Add(1)
	return false
}

// Transmit places a frame on the TX ring (what the datapath does on output).
func (p *Port) Transmit(frame []byte) bool {
	if p.tx.Enqueue(frame) {
		p.txPackets.Add(1)
		return true
	}
	p.txDrops.Add(1)
	return false
}

// DrainTx empties the TX ring, returning the number of frames drained (a
// traffic sink / loopback tester).
func (p *Port) DrainTx() int {
	n := 0
	for {
		if _, ok := p.tx.Dequeue(); !ok {
			return n
		}
		n++
	}
}

// RxBurst receives up to len(out) frames from the RX ring.
func (p *Port) RxBurst(out [][]byte) int { return p.rx.DequeueBurst(out) }

// Stats returns a snapshot of the port counters.
func (p *Port) Stats() PortStats {
	return PortStats{
		RxPackets: p.rxPackets.Load(),
		TxPackets: p.txPackets.Load(),
		RxDrops:   p.rxDrops.Load(),
		TxDrops:   p.txDrops.Load(),
	}
}

// Datapath is the interface the workers drive; both the ESWITCH compiled
// datapath and the OVS baseline satisfy it (via small adapters in the public
// API package).
type Datapath interface {
	Process(p *pkt.Packet, v *openflow.Verdict)
}

// BurstDatapath is the optional burst extension of Datapath: a datapath that
// can classify a whole RX burst in one call (the ESWITCH compiled datapath's
// ProcessBurst).  Workers detect it once at switch construction and then
// drive RX burst → ProcessBurst → TX burst instead of per-packet calls.
type BurstDatapath interface {
	Datapath
	ProcessBurst(ps []*pkt.Packet, vs []openflow.Verdict)
}

// DatapathFunc adapts a function to the Datapath interface.
type DatapathFunc func(p *pkt.Packet, v *openflow.Verdict)

// Process implements Datapath.
func (f DatapathFunc) Process(p *pkt.Packet, v *openflow.Verdict) { f(p, v) }

// WorkerStats are per-worker forwarding counters.
type WorkerStats struct {
	Processed uint64
	Forwarded uint64
	Dropped   uint64
	ToCtrl    uint64
}

// Switch ties ports and a datapath together and runs run-to-completion
// forwarding loops over them.
type Switch struct {
	ports []*Port
	dp    Datapath
	// bdp is non-nil when the datapath supports native burst processing;
	// the workers then hand whole RX bursts to it.
	bdp   BurstDatapath
	burst int

	// wsPool recycles per-worker burst state for callers that use PollOnce
	// directly instead of RunWorkers.
	wsPool sync.Pool

	processed atomic.Uint64
	forwarded atomic.Uint64
	dropped   atomic.Uint64
	toCtrl    atomic.Uint64
}

// NewSwitch creates a switch with numPorts ports.  When dp also implements
// BurstDatapath (the compiled ESWITCH datapath does), the worker loops use
// the burst fast path automatically.
func NewSwitch(dp Datapath, numPorts, ringSize int) *Switch {
	s := &Switch{dp: dp, burst: DefaultBurst}
	if bdp, ok := dp.(BurstDatapath); ok {
		s.bdp = bdp
	}
	s.wsPool.New = func() any { return s.newWorkerState() }
	for i := 0; i < numPorts; i++ {
		s.ports = append(s.ports, NewPort(uint32(i+1), ringSize))
	}
	return s
}

// workerState is the reusable per-worker burst scratch: the RX frame burst,
// the packet structs wrapping it, and the verdicts.  Everything is allocated
// once per worker so the polling loop is allocation-free.
type workerState struct {
	frames   [][]byte
	packets  []pkt.Packet
	pkts     []*pkt.Packet
	verdicts []openflow.Verdict
}

func (s *Switch) newWorkerState() *workerState {
	ws := &workerState{
		frames:   make([][]byte, s.burst),
		packets:  make([]pkt.Packet, s.burst),
		pkts:     make([]*pkt.Packet, s.burst),
		verdicts: make([]openflow.Verdict, s.burst),
	}
	for i := range ws.packets {
		ws.pkts[i] = &ws.packets[i]
	}
	return ws
}

// Port returns the port with the given 1-based ID.
func (s *Switch) Port(id uint32) (*Port, error) {
	if id == 0 || int(id) > len(s.ports) {
		return nil, fmt.Errorf("dpdk: no port %d", id)
	}
	return s.ports[id-1], nil
}

// Ports returns all ports.
func (s *Switch) Ports() []*Port { return s.ports }

// Stats returns aggregate worker statistics.
func (s *Switch) Stats() WorkerStats {
	return WorkerStats{
		Processed: s.processed.Load(),
		Forwarded: s.forwarded.Load(),
		Dropped:   s.dropped.Load(),
		ToCtrl:    s.toCtrl.Load(),
	}
}

// PollOnce performs one run-to-completion iteration over the given ports:
// receive a burst from each, classify (through the burst fast path when the
// datapath supports it), and transmit.  It returns the number of packets
// processed.  Passing nil polls every port.
func (s *Switch) PollOnce(ports []*Port) int {
	ws := s.wsPool.Get().(*workerState)
	n := s.pollPorts(ws, ports)
	s.wsPool.Put(ws)
	return n
}

// pollPorts is PollOnce over caller-owned worker state; the run-to-completion
// workers hold one state each so the loop never allocates.
func (s *Switch) pollPorts(ws *workerState, ports []*Port) int {
	if ports == nil {
		ports = s.ports
	}
	total := 0
	for _, port := range ports {
		n := port.RxBurst(ws.frames)
		if n == 0 {
			continue
		}
		if s.bdp != nil {
			// Burst fast path: wrap the RX burst and classify it in one
			// ProcessBurst call.
			for i := 0; i < n; i++ {
				ws.packets[i] = pkt.Packet{Data: ws.frames[i], InPort: port.ID}
			}
			s.bdp.ProcessBurst(ws.pkts[:n], ws.verdicts[:n])
			for i := 0; i < n; i++ {
				s.account(&ws.verdicts[i], ws.frames[i])
			}
		} else {
			for i := 0; i < n; i++ {
				ws.packets[0] = pkt.Packet{Data: ws.frames[i], InPort: port.ID}
				s.dp.Process(&ws.packets[0], &ws.verdicts[0])
				s.account(&ws.verdicts[0], ws.frames[i])
			}
		}
		total += n
	}
	return total
}

func (s *Switch) account(v *openflow.Verdict, frame []byte) {
	s.processed.Add(1)
	switch {
	case v.Forwarded():
		s.forwarded.Add(1)
		for _, out := range v.OutPorts {
			if int(out) <= len(s.ports) && out > 0 {
				s.ports[out-1].Transmit(frame)
			}
		}
	case v.ToController:
		s.toCtrl.Add(1)
	default:
		s.dropped.Add(1)
	}
}

// RunWorkers starts one run-to-completion goroutine ("core") per port subset,
// sharding ports round-robin over numWorkers, and returns a stop function.
// Each worker busy-polls its ports until stopped.
func (s *Switch) RunWorkers(numWorkers int) (stop func()) {
	if numWorkers < 1 {
		numWorkers = 1
	}
	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < numWorkers; w++ {
		var mine []*Port
		for i := w; i < len(s.ports); i += numWorkers {
			mine = append(mine, s.ports[i])
		}
		if len(mine) == 0 {
			continue
		}
		wg.Add(1)
		go func(ports []*Port) {
			defer wg.Done()
			ws := s.newWorkerState()
			for {
				select {
				case <-done:
					return
				default:
				}
				if s.pollPorts(ws, ports) == 0 {
					// Nothing received: yield briefly to avoid
					// starving the producer on small machines.
					for i := 0; i < 64; i++ {
						_ = i
					}
				}
			}
		}(mine)
	}
	return func() {
		close(done)
		wg.Wait()
	}
}
