//go:build linux

package dpdk

import (
	"fmt"
	"os"
	"os/exec"
	"testing"
	"time"
)

// This file registers the AF_PACKET backend with the shared conformance
// suite, running it over a freshly created veth pair: the backend under test
// binds one end, a peer socket on the other end injects frames.  Creating
// veth interfaces needs CAP_NET_ADMIN (and the sockets CAP_NET_RAW), so the
// harness skips cleanly on unprivileged runners — visibly, as
// TestBackendConformance/afpacket/... SKIP lines.

func init() {
	platformHarnesses = append(platformHarnesses, func() conformanceHarness {
		return conformanceHarness{
			name:         "afpacket",
			exactRx:      false, // the kernel delivers stray traffic too
			rxRepeatable: true,
			make:         makeAFPacketHarness,
		}
	})
}

func makeAFPacketHarness(t *testing.T) (PortBackend, func(t *testing.T) [][][]byte, func()) {
	subjectIface, peerIface, delVeth := vethPairForTest(t)
	be, err := NewAFPacketBackend(subjectIface)
	if err != nil {
		delVeth()
		t.Skipf("afpacket backend on %s: %v", subjectIface, err)
	}
	peer, err := NewAFPacketBackend(peerIface)
	if err != nil {
		be.Close()
		delVeth()
		t.Skipf("afpacket peer on %s: %v", peerIface, err)
	}
	waitVethCarrier(t, be, peer)
	cleanup := func() {
		peer.Close()
		delVeth()
	}
	inject := func(t *testing.T) [][][]byte {
		frames := make([][]byte, conformFrameCount)
		for i := range frames {
			frames[i] = conformanceFrame(i)
		}
		if n := peer.TxBurst(0, frames); n != len(frames) {
			t.Fatalf("peer injected %d of %d frames", n, len(frames))
		}
		// Single queue: every frame lands on queue 0.
		return [][][]byte{frames}
	}
	return be, inject, cleanup
}

// vethPairForTest creates an up veth pair with test-unique names (Linux caps
// interface names at 15 bytes), skipping the test when the environment
// cannot create links.
func vethPairForTest(t *testing.T) (a, b string, cleanup func()) {
	t.Helper()
	a = fmt.Sprintf("eswA%d", os.Getpid()%100000)
	b = fmt.Sprintf("eswB%d", os.Getpid()%100000)
	if out, err := exec.Command("ip", "link", "add", a, "type", "veth", "peer", "name", b).CombinedOutput(); err != nil {
		t.Skipf("cannot create veth pair (CAP_NET_ADMIN required): %v: %s", err, out)
	}
	cleanup = func() {
		// Deleting one end removes both.
		exec.Command("ip", "link", "del", a).Run()
	}
	for _, iface := range []string{a, b} {
		if out, err := exec.Command("ip", "link", "set", iface, "up").CombinedOutput(); err != nil {
			cleanup()
			t.Skipf("cannot bring %s up: %v: %s", iface, err, out)
		}
	}
	return a, b, cleanup
}

// waitVethCarrier sends probe frames from the peer until one arrives at the
// subject (veth carrier comes up asynchronously after both ends are set up),
// then drains whatever accumulated.  The probe uses an ethertype the
// conformance magic check rejects, so leftovers cannot satisfy RX
// expectations.
func waitVethCarrier(t *testing.T, be, peer *AFPacketBackend) {
	t.Helper()
	probe := make([]byte, 60)
	copy(probe, []byte{0x02, 0x70, 0x0b, 0xe0, 0x00, 0x01, 0x02, 0x70, 0x0b, 0xe0, 0x00, 0x02})
	probe[12], probe[13] = 0x88, 0xb6
	out := make([][]byte, 8)
	deadline := time.Now().Add(2 * time.Second)
	for {
		peer.TxBurst(0, [][]byte{probe})
		if be.RxBurst(0, out) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Skipf("veth pair never passed traffic (no carrier)")
		}
		time.Sleep(5 * time.Millisecond)
	}
	drainRx(be, 0)
	drainRx(peer, 0)
}
