package dpdk

import (
	"fmt"

	"eswitch/internal/openflow"
	"eswitch/internal/pkt"
)

// This file is the switch side of PacketOut execution: the slow-path service
// hands it a controller-supplied frame plus action list, and the switch
// either transmits the frame directly (physical ports, flood) or re-injects
// it through the datapath (output:TABLE) and forwards the resulting verdict.
// All transmission goes through the ports' dedicated slow-path TX rings
// (Port.TransmitSlow), so the worker-owned TX queues stay single-producer.

// reinjectPunts counts packets that were re-injected through the pipeline by
// an output:TABLE PacketOut and punted again.  They are not re-delivered —
// pushing from the service would break the worker rings' single-producer
// contract, and a controller that packet-outs into a table that punts back
// is a loop the slow path must cut, exactly like OVS's packet-in throttling.
func (s *Switch) ReinjectPunts() uint64 { return s.reinjectPunts.Load() }

// PacketOut executes a controller-originated action list against the frame
// as if it had been received on inPort (0 = no ingress port; flood then
// covers every port).  It implements slowpath.Executor.  Supported actions
// are Output (physical ports, FLOOD, TABLE — the pipeline re-injection) and
// Drop; header-rewrite actions in a packet-out are rejected rather than
// silently skipped, since this repository's frames would not carry them.
func (s *Switch) PacketOut(inPort uint32, frame []byte, actions openflow.ActionList) error {
	for _, a := range actions {
		switch a.Type {
		case openflow.ActionOutput:
			switch a.Port {
			case openflow.PortTable:
				if err := s.packetOutTable(inPort, frame); err != nil {
					return err
				}
			case openflow.PortFlood:
				for _, port := range s.ports {
					if port.ID != inPort {
						port.TransmitSlow(frame)
					}
				}
			case openflow.PortController:
				// A controller telling the switch to punt back to the
				// controller is a no-op here.
			default:
				port, err := s.Port(a.Port)
				if err != nil {
					return fmt.Errorf("dpdk: packet-out to unknown port %d", a.Port)
				}
				port.TransmitSlow(frame)
			}
		case openflow.ActionDrop:
			return nil
		default:
			return fmt.Errorf("dpdk: unsupported packet-out action %s", a)
		}
	}
	return nil
}

// packetOutTable classifies the frame through the datapath (the facade-safe
// Process path, so it is race-free against concurrent flow-mods and
// forwarding workers) and transmits the verdict's output ports.
func (s *Switch) packetOutTable(inPort uint32, frame []byte) error {
	var p pkt.Packet
	var v openflow.Verdict
	p.Data = frame
	p.InPort = inPort
	s.dp.Process(&p, &v)
	for _, out := range v.OutPorts {
		if port, err := s.Port(out); err == nil {
			port.TransmitSlow(frame)
		}
	}
	if v.ToController {
		s.reinjectPunts.Add(1)
	}
	return nil
}
