package dpdk

import (
	"sync"
	"sync/atomic"
	"time"

	"eswitch/internal/backoff"
)

// This file is the port fault domain: the per-port link-state machine, the
// supervisor goroutine that drives it off the hot path, and the worker
// watchdog.  The design mirrors the controller-channel supervisor
// (internal/controller): a single off-path goroutine owns all transitions,
// failure detection is pull-based over lock-free signals the hot loops
// already produce (backend queue-error slots, heartbeat counters), and
// recovery retries under the shared deterministic backoff generator
// (internal/backoff) so chaos tests can assert the exact reopen schedule.
//
// The workers' entire involvement costs one atomic load per port per poll
// (skip Down ports) and one heartbeat bump per poll — nothing locks,
// nothing allocates, and a switch that never starts a supervisor behaves
// exactly as before (the zero link-state value is Up).

// LinkState is a port's position in the link-state machine.
//
//	Up ──(fatal queue error | worker stall)──▶ Down
//	Down ──(Reopen ok, quiet history)──▶ Up
//	Down ──(Reopen ok, ≥FlapThreshold downs in FlapWindow)──▶ Flapping
//	Flapping ──(FlapWindow with no downs)──▶ Up
//	Flapping ──(fatal queue error | worker stall)──▶ Down
//
// Up and Flapping ports are polled and forward; Down ports are skipped by
// every worker and, when their backend is reopenable, re-dialed by the
// supervisor under the backoff schedule.  Flapping is an advisory label —
// the port works, but its recent history says not to trust it yet — that
// operators and the controller see via PortStatus.
type LinkState uint32

const (
	// LinkUp: healthy, polled.  The zero value, so unsupervised switches
	// never leave it.
	LinkUp LinkState = iota
	// LinkDown: a fatal backend error or a watchdog verdict parked the
	// port; workers skip it.
	LinkDown
	// LinkFlapping: recovered, but with enough recent Down transitions that
	// the supervisor flags it as bouncing.
	LinkFlapping
)

// String renders the state for logs, stats output and test failures.
func (s LinkState) String() string {
	switch s {
	case LinkDown:
		return "down"
	case LinkFlapping:
		return "flapping"
	}
	return "up"
}

// workerHeartbeat is one RunWorkers worker's liveness block: beats advances
// once per poll iteration and polling names the port currently being polled
// (1-based ID; 0 between ports), both written only by the owning worker.
// The padding gives each worker's block its own cache line so the watchdog's
// reads never false-share with the hot loop.
type workerHeartbeat struct {
	beats   atomic.Uint64
	polling atomic.Uint64
	_       [112]byte
}

// registerHeartbeat publishes a new worker's heartbeat block (copy-on-write
// under mu; the watchdog reads the published slice lock-free).
func (s *Switch) registerHeartbeat() *workerHeartbeat {
	hb := &workerHeartbeat{}
	s.mu.Lock()
	old := s.hbs.Load()
	var next []*workerHeartbeat
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, hb)
	s.hbs.Store(&next)
	s.mu.Unlock()
	return hb
}

// retireHeartbeat withdraws a stopped worker's block from the watchdog's
// view.
func (s *Switch) retireHeartbeat(hb *workerHeartbeat) {
	s.mu.Lock()
	if old := s.hbs.Load(); old != nil {
		next := make([]*workerHeartbeat, 0, len(*old))
		for _, o := range *old {
			if o != hb {
				next = append(next, o)
			}
		}
		s.hbs.Store(&next)
	}
	s.mu.Unlock()
}

// heartbeats snapshots the live workers' heartbeat blocks without locking.
func (s *Switch) heartbeats() []*workerHeartbeat {
	if p := s.hbs.Load(); p != nil {
		return *p
	}
	return nil
}

// PortLinkEvent is one link-state transition, delivered to the
// OnTransition hook (and recorded for tests/operators).
type PortLinkEvent struct {
	// Port is the 1-based port ID.
	Port uint32
	// State is the state the port transitioned into.
	State LinkState
	// Reason is a short operator-facing cause ("fatal queue error",
	// "worker stalled", "reopened", "flap window expired").
	Reason string
	// Err carries the backend error behind a Down transition (nil
	// otherwise).
	Err error
}

// PortSupervisorConfig parameterizes StartPortSupervisor.
type PortSupervisorConfig struct {
	// Interval is the scan cadence (default 5ms): how often queue errors
	// and heartbeats are sampled.  Detection latency is one interval, which
	// is invisible next to the backoff delays recovery waits anyway.
	Interval time.Duration
	// StallTimeout is how long a worker's heartbeat may stay flat before
	// the watchdog declares it stalled and takes the port it was polling
	// Down (default 500ms; negative disables the watchdog).  Workers bump
	// their heartbeat every poll including idle ones, so only a wedged
	// backend syscall (or a livelocked datapath) trips this.
	StallTimeout time.Duration
	// BackoffMin/BackoffMax/JitterFrac/Seed parameterize the reopen backoff
	// exactly like the controller supervisor's redial knobs (defaults
	// 50ms/5s/0.25): PortBackoffSchedule reproduces the delay sequence each
	// port's reopen attempts follow.
	BackoffMin time.Duration
	BackoffMax time.Duration
	JitterFrac float64
	Seed       int64
	// FlapThreshold Down transitions within FlapWindow label a recovered
	// port Flapping instead of Up (defaults 3 / 1s); a FlapWindow with no
	// further downs clears the label.
	FlapThreshold int
	FlapWindow    time.Duration
	// OnTransition, when set, observes every link-state transition from the
	// supervisor goroutine — the hook that forwards PortStatus to the
	// control plane.  Keep it brief; it runs on the scan loop.
	OnTransition func(ev PortLinkEvent)
}

// portSupervisorDefaults fills the zero-valued knobs in place.
func portSupervisorDefaults(cfg *PortSupervisorConfig) {
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Millisecond
	}
	if cfg.StallTimeout == 0 {
		cfg.StallTimeout = 500 * time.Millisecond
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 50 * time.Millisecond
	}
	if cfg.BackoffMax < cfg.BackoffMin {
		cfg.BackoffMax = 5 * time.Second
		if cfg.BackoffMax < cfg.BackoffMin {
			cfg.BackoffMax = cfg.BackoffMin
		}
	}
	if cfg.JitterFrac <= 0 {
		cfg.JitterFrac = 0.25
	}
	if cfg.FlapThreshold <= 0 {
		cfg.FlapThreshold = 3
	}
	if cfg.FlapWindow <= 0 {
		cfg.FlapWindow = time.Second
	}
}

// backoffConfig maps the supervisor knobs onto the shared generator.
func (cfg PortSupervisorConfig) backoffConfig() backoff.Config {
	return backoff.Config{
		Min:        cfg.BackoffMin,
		Max:        cfg.BackoffMax,
		JitterFrac: cfg.JitterFrac,
		Seed:       cfg.Seed,
	}
}

// PortBackoffSchedule reproduces the first n reopen delays any single port
// under this config schedules over consecutive failed reopens — the oracle
// chaos tests compare each port's recorded sequence against.  Every port
// owns an independent generator seeded with cfg.Seed, so the schedule is
// per-port, not shared.
func PortBackoffSchedule(cfg PortSupervisorConfig, n int) []time.Duration {
	portSupervisorDefaults(&cfg)
	return backoff.Schedule(cfg.backoffConfig(), n)
}

// supervisedPort is the supervisor's private per-port runtime.
type supervisedPort struct {
	p *Port
	// ro is the backend's reopen extension (nil = a Down port is permanent:
	// an exhausted trace has nothing to re-dial).
	ro ReopenableBackend
	// src generates this port's reopen backoff delays.
	src *backoff.Source
	// nextReopen gates reopen attempts; the first attempt after a Down
	// transition is immediate (zero time).
	nextReopen time.Time
	// downs holds recent Down transition times inside the flap window.
	downs []time.Time
	// lastDown feeds the flap label's decay.
	lastDown time.Time
	// backoffs records every scheduled reopen delay (read via Backoffs
	// under the supervisor mutex).
	backoffs []time.Duration
}

// PortSupervisor owns every port's link-state transitions: it scans backend
// queue errors and worker heartbeats at a fixed cadence, parks failing
// ports Down, re-dials reopenable backends under the deterministic backoff
// schedule, and labels bouncing ports Flapping.  One per switch; start it
// with Switch.StartPortSupervisor.
type PortSupervisor struct {
	s   *Switch
	cfg PortSupervisorConfig

	mu     sync.Mutex
	ports  []*supervisedPort
	events []PortLinkEvent

	// beatSeen tracks each heartbeat block's last observed count (scan-
	// goroutine-private).
	beatSeen map[*workerHeartbeat]*beatTrack

	transitions atomic.Uint64
	reopens     atomic.Uint64
	reopenFails atomic.Uint64
	stalls      atomic.Uint64

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// beatTrack is the watchdog's memory of one heartbeat block.
type beatTrack struct {
	beats    uint64
	lastMove time.Time
	stalled  bool
}

// StartPortSupervisor launches the port supervision loop over every port of
// the switch.  Call Stop before closing the switch.  The scan goroutine
// never touches the switch's registration mutex, so arming the supervisor
// does not perturb the zero-lock worker-path assertions.
func (s *Switch) StartPortSupervisor(cfg PortSupervisorConfig) *PortSupervisor {
	portSupervisorDefaults(&cfg)
	ps := &PortSupervisor{
		s:        s,
		cfg:      cfg,
		beatSeen: make(map[*workerHeartbeat]*beatTrack),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, p := range s.ports {
		sp := &supervisedPort{p: p, src: backoff.NewSource(cfg.backoffConfig())}
		if ro, ok := p.be.(ReopenableBackend); ok {
			sp.ro = ro
		}
		ps.ports = append(ps.ports, sp)
	}
	go func() {
		defer close(ps.done)
		ticker := time.NewTicker(cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-ps.stop:
				return
			case <-ticker.C:
				ps.scan(time.Now())
			}
		}
	}()
	return ps
}

// Stop halts the scan loop and waits for it to exit.  Idempotent.  Link
// states are left as they are: a Down port stays Down (and skipped) after
// supervision ends.
func (ps *PortSupervisor) Stop() {
	ps.once.Do(func() { close(ps.stop) })
	<-ps.done
}

// Transitions returns how many link-state transitions the supervisor made.
func (ps *PortSupervisor) Transitions() uint64 { return ps.transitions.Load() }

// Reopens returns how many backend reopen attempts were made.
func (ps *PortSupervisor) Reopens() uint64 { return ps.reopens.Load() }

// ReopenFails returns how many reopen attempts failed.
func (ps *PortSupervisor) ReopenFails() uint64 { return ps.reopenFails.Load() }

// Stalls returns how many worker-stall verdicts the watchdog issued.
func (ps *PortSupervisor) Stalls() uint64 { return ps.stalls.Load() }

// Backoffs returns the reopen delays scheduled for the given port so far,
// in order — the sequence PortBackoffSchedule reproduces.
func (ps *PortSupervisor) Backoffs(port uint32) []time.Duration {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for _, sp := range ps.ports {
		if sp.p.ID == port {
			return append([]time.Duration(nil), sp.backoffs...)
		}
	}
	return nil
}

// Events returns every link-state transition so far, in order.
func (ps *PortSupervisor) Events() []PortLinkEvent {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return append([]PortLinkEvent(nil), ps.events...)
}

// scan is one supervision pass: watchdog verdicts first (a stalled worker
// names the port to blame), then queue-error detection, then reopen/decay
// per port.
func (ps *PortSupervisor) scan(now time.Time) {
	ps.scanHeartbeats(now)
	for _, sp := range ps.ports {
		if sp.p.Closed() {
			continue
		}
		switch sp.p.LinkState() {
		case LinkUp, LinkFlapping:
			if err := ps.queueError(sp.p); err != nil {
				ps.markDown(sp, now, "fatal queue error", err)
				continue
			}
			if sp.p.LinkState() == LinkFlapping && now.Sub(sp.lastDown) > ps.cfg.FlapWindow {
				ps.transition(sp, LinkFlapping, LinkUp, "flap window expired", nil)
			}
		case LinkDown:
			ps.tryReopen(sp, now)
		}
	}
}

// scanHeartbeats compares every live worker's heartbeat against the last
// scan; a counter flat for StallTimeout is a stalled worker — most likely a
// backend syscall that never returned — and the port it was polling is
// taken Down so the remaining workers (and the stalled worker itself, once
// its syscall returns) skip it.
func (ps *PortSupervisor) scanHeartbeats(now time.Time) {
	if ps.cfg.StallTimeout < 0 {
		return
	}
	hbs := ps.s.heartbeats()
	if len(hbs) == 0 && len(ps.beatSeen) == 0 {
		// No workers registered (PollOnce-driven switches): stay off the
		// allocator entirely so a full-cadence supervisor is invisible to
		// the zero-alloc worker-path assertions.
		return
	}
	live := make(map[*workerHeartbeat]bool, len(hbs))
	for _, hb := range hbs {
		live[hb] = true
		tr := ps.beatSeen[hb]
		if tr == nil {
			ps.beatSeen[hb] = &beatTrack{beats: hb.beats.Load(), lastMove: now}
			continue
		}
		if b := hb.beats.Load(); b != tr.beats {
			tr.beats, tr.lastMove, tr.stalled = b, now, false
			continue
		}
		if tr.stalled || now.Sub(tr.lastMove) < ps.cfg.StallTimeout {
			continue
		}
		tr.stalled = true
		ps.stalls.Add(1)
		if pid := hb.polling.Load(); pid != 0 {
			for _, sp := range ps.ports {
				if uint64(sp.p.ID) == pid && !sp.p.Closed() && sp.p.LinkState() != LinkDown {
					ps.markDown(sp, now, "worker stalled", nil)
				}
			}
		}
	}
	for hb := range ps.beatSeen {
		if !live[hb] {
			delete(ps.beatSeen, hb)
		}
	}
}

// queueError polls every queue's error slot of a port's backend.
func (ps *PortSupervisor) queueError(p *Port) error {
	for q := 0; q < p.nq; q++ {
		if err := p.be.QueueError(q); err != nil {
			return err
		}
	}
	return nil
}

// markDown parks a port Down: workers skip it from their next poll, and the
// reopen path (when the backend supports it) starts immediately.
func (ps *PortSupervisor) markDown(sp *supervisedPort, now time.Time, reason string, err error) {
	from := sp.p.LinkState()
	sp.lastDown = now
	sp.downs = append(sp.downs, now)
	// Trim the flap history to the window so it cannot grow unbounded.
	cut := 0
	for cut < len(sp.downs) && now.Sub(sp.downs[cut]) > ps.cfg.FlapWindow {
		cut++
	}
	sp.downs = sp.downs[cut:]
	sp.nextReopen = time.Time{} // first reopen attempt is immediate
	ps.transition(sp, from, LinkDown, reason, err)
}

// tryReopen drives a Down port's self-healing: attempt Reopen when its
// backoff gate has passed, rescheduling with the next backoff delay on
// failure and transitioning to Up (or Flapping, with a bouncy history) on
// success.  Ports whose backend cannot reopen stay Down.
func (ps *PortSupervisor) tryReopen(sp *supervisedPort, now time.Time) {
	if sp.ro == nil || now.Before(sp.nextReopen) {
		return
	}
	ps.reopens.Add(1)
	if err := sp.ro.Reopen(); err != nil {
		ps.reopenFails.Add(1)
		d := sp.src.Next()
		ps.mu.Lock()
		sp.backoffs = append(sp.backoffs, d)
		ps.mu.Unlock()
		sp.nextReopen = now.Add(d)
		return
	}
	sp.src.Reset()
	to, reason := LinkUp, "reopened"
	if len(sp.downs) >= ps.cfg.FlapThreshold {
		to, reason = LinkFlapping, "reopened (flapping)"
	}
	ps.transition(sp, LinkDown, to, reason, nil)
}

// transition publishes a state change, records the event, and runs the
// OnTransition hook.
func (ps *PortSupervisor) transition(sp *supervisedPort, from, to LinkState, reason string, err error) {
	if from == to {
		return
	}
	sp.p.setLink(to)
	ps.transitions.Add(1)
	ev := PortLinkEvent{Port: sp.p.ID, State: to, Reason: reason, Err: err}
	ps.mu.Lock()
	ps.events = append(ps.events, ev)
	ps.mu.Unlock()
	if ps.cfg.OnTransition != nil {
		ps.cfg.OnTransition(ev)
	}
}
