package dpdk

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eswitch/internal/pcap"
	"eswitch/internal/pkt"
)

// This file is the shared backend-conformance suite: every PortBackend —
// simulated rings, pcap replay, AF_PACKET over a veth pair (see the
// linux-only harness file), and the null sink — runs through the same
// contract checks, so a new backend cannot silently diverge on burst
// ordering, partial-TX accounting, stats invariants or Close idempotency.

// conformFrameCount is the size of the standard injected frame set.
const conformFrameCount = 12

// conformanceHarness adapts one backend to the suite.
type conformanceHarness struct {
	name string
	// make builds a fresh backend.  inject delivers the standard
	// conformFrameCount distinct frames into the backend's RX side (through
	// whatever path reaches it — ring injection, trace preload, a peer
	// socket) and returns them in expected per-queue delivery order, indexed
	// by queue.  A nil inject skips the RX checks (the null sink never
	// receives).
	make func(t *testing.T) (be PortBackend, inject func(t *testing.T) [][][]byte, cleanup func())
	// exactRx means RX delivers exactly the injected frames (no outside
	// noise); kernel-backed backends see stray traffic and only guarantee
	// the injected frames arrive as an ordered subsequence.
	exactRx bool
	// rxRepeatable means inject may be called more than once per backend
	// instance (false for trace replay, whose frame set is fixed at open).
	rxRepeatable bool
	// txCapacity, when > 0, is a TX-queue size the suite can overflow to
	// check partial-accept accounting (0 = effectively unbounded TX).
	txCapacity int
}

// conformanceFrame builds the i-th distinct test frame (minimum Ethernet
// size so real interfaces carry it unchanged).
func conformanceFrame(i int) []byte {
	f := make([]byte, 60)
	// Locally administered unicast MACs plus a magic prefix, so kernel
	// noise on a real interface can never collide with an injected frame.
	copy(f, []byte{0x02, 0xe5, 0x17, 0xc4, 0x0f, byte(i), 0x02, 0xe5, 0x17, 0xc4, 0xf0, byte(i >> 8)})
	f[12], f[13] = 0x88, 0xb5 // IEEE 802.1 local experimental ethertype
	f[14] = byte(i)
	f[15] = byte(i >> 8)
	return f
}

// conformanceTrace is the standard frame set as capture records, and
// conformanceDemux the per-queue expectation under the production RSS demux.
func conformanceTrace() []pcap.Packet {
	records := make([]pcap.Packet, conformFrameCount)
	for i := range records {
		records[i] = pcap.Packet{Ts: time.Unix(1, int64(i)*1000), Data: conformanceFrame(i)}
	}
	return records
}

func conformanceDemux(queues int) [][][]byte {
	perQueue := make([][][]byte, queues)
	for i := 0; i < conformFrameCount; i++ {
		f := conformanceFrame(i)
		q := 0
		if queues > 1 {
			q = int(pkt.RSSHash(f) % uint32(queues))
		}
		perQueue[q] = append(perQueue[q], f)
	}
	return perQueue
}

// platformHarnesses is extended by build-tagged files (the AF_PACKET/veth
// harness on Linux).
var platformHarnesses []func() conformanceHarness

func conformanceHarnesses() []conformanceHarness {
	hs := []conformanceHarness{
		{
			name:         "ring",
			exactRx:      true,
			rxRepeatable: true,
			txCapacity:   7, // NewRing(8) keeps one slot open
			make: func(t *testing.T) (PortBackend, func(*testing.T) [][][]byte, func()) {
				be := NewRingBackend(8, 2)
				inject := func(t *testing.T) [][][]byte {
					perQueue := make([][][]byte, be.Queues())
					for i := 0; i < conformFrameCount; i++ {
						f := conformanceFrame(i)
						q := i % be.Queues()
						if !be.InjectOn(q, f) {
							t.Fatalf("ring inject %d on queue %d failed", i, q)
						}
						perQueue[q] = append(perQueue[q], f)
					}
					return perQueue
				}
				return be, inject, func() {}
			},
		},
		{
			name:    "pcap",
			exactRx: true,
			// The trace is the injection: the frame set is fixed at open, so
			// inject is a one-shot that just returns the expectation.
			make: func(t *testing.T) (PortBackend, func(*testing.T) [][][]byte, func()) {
				be, err := NewPcapBackend(conformanceTrace(), PcapConfig{Queues: 2})
				if err != nil {
					t.Fatalf("pcap backend: %v", err)
				}
				inject := func(t *testing.T) [][][]byte {
					return conformanceDemux(be.Queues())
				}
				return be, inject, func() {}
			},
		},
		{
			name: "null",
			make: func(t *testing.T) (PortBackend, func(*testing.T) [][][]byte, func()) {
				return NewNullBackend(2), nil, func() {}
			},
		},
	}
	for _, mk := range platformHarnesses {
		hs = append(hs, mk())
	}
	return hs
}

// TestBackendConformance runs every registered backend through the shared
// contract checks.
func TestBackendConformance(t *testing.T) {
	for _, h := range conformanceHarnesses() {
		t.Run(h.name, func(t *testing.T) {
			t.Run("queue-geometry", func(t *testing.T) { conformQueueGeometry(t, h) })
			t.Run("rx-burst-ordering", func(t *testing.T) { conformRxOrdering(t, h) })
			t.Run("tx-accounting", func(t *testing.T) { conformTxAccounting(t, h) })
			t.Run("partial-tx-accounting", func(t *testing.T) { conformPartialTx(t, h) })
			t.Run("stats-invariants", func(t *testing.T) { conformStats(t, h) })
			t.Run("queue-error", func(t *testing.T) { conformQueueError(t, h) })
			t.Run("close-idempotent", func(t *testing.T) { conformClose(t, h) })
			t.Run("close-races-workers", func(t *testing.T) { conformCloseRace(t, h) })
		})
	}
}

func conformQueueGeometry(t *testing.T, h conformanceHarness) {
	be, _, cleanup := h.make(t)
	defer cleanup()
	defer be.Close()
	if be.Queues() < 1 {
		t.Fatalf("Queues() = %d, want >= 1", be.Queues())
	}
	// A drained (or never-receiving) backend must return 0, not block.
	out := make([][]byte, 8)
	for q := 0; q < be.Queues(); q++ {
		drainRx(be, q) // preloaded traces and kernel noise both drain away
		if n := be.RxBurst(q, out); n != 0 && h.exactRx {
			// Kernel-backed backends may legitimately receive stray traffic
			// at any moment; for them the bounded drain above already proves
			// RxBurst never blocks.
			t.Fatalf("RxBurst on drained queue %d = %d, want 0", q, n)
		}
	}
}

func conformRxOrdering(t *testing.T, h conformanceHarness) {
	be, inject, cleanup := h.make(t)
	defer cleanup()
	defer be.Close()
	if inject == nil {
		t.Skip("backend has no RX injection path")
	}
	if !h.exactRx {
		// Kernel-backed backends: clear pre-existing noise first.
		for q := 0; q < be.Queues(); q++ {
			drainRx(be, q)
		}
	}
	want := inject(t)
	for q := 0; q < be.Queues(); q++ {
		got := collectRx(be, q, len(want[q]), h.exactRx)
		if h.exactRx {
			if len(got) != len(want[q]) {
				t.Fatalf("queue %d delivered %d frames, want %d", q, len(got), len(want[q]))
			}
			for i := range got {
				if !bytes.Equal(got[i], want[q][i]) {
					t.Fatalf("queue %d frame %d out of order or corrupted", q, i)
				}
			}
			continue
		}
		// Noise-tolerant backends: the injected frames must appear as an
		// ordered subsequence of the delivered stream.
		next := 0
		for _, f := range got {
			if next < len(want[q]) && bytes.Equal(f, want[q][next]) {
				next++
			}
		}
		if next != len(want[q]) {
			t.Fatalf("queue %d: only %d/%d injected frames arrived in order", q, next, len(want[q]))
		}
	}
	if st := be.Stats(); st.RxPackets < conformFrameCount {
		t.Fatalf("RxPackets = %d after delivering %d frames", st.RxPackets, conformFrameCount)
	}
}

func conformTxAccounting(t *testing.T, h conformanceHarness) {
	be, _, cleanup := h.make(t)
	defer cleanup()
	defer be.Close()
	before := be.Stats()
	frames := [][]byte{conformanceFrame(100), conformanceFrame(101), conformanceFrame(102)}
	n := be.TxBurst(0, frames)
	if n != len(frames) {
		t.Fatalf("TxBurst accepted %d of %d on an empty queue", n, len(frames))
	}
	after := be.Stats()
	if got := after.TxPackets - before.TxPackets; got != uint64(n) {
		t.Fatalf("TxPackets advanced by %d, want %d (accepted frames only)", got, n)
	}
}

func conformPartialTx(t *testing.T, h conformanceHarness) {
	be, _, cleanup := h.make(t)
	defer cleanup()
	defer be.Close()
	if h.txCapacity <= 0 {
		t.Skip("backend TX cannot be overflowed deterministically")
	}
	over := make([][]byte, h.txCapacity+3)
	for i := range over {
		over[i] = conformanceFrame(200 + i)
	}
	before := be.Stats()
	n := be.TxBurst(0, over)
	if n != h.txCapacity {
		t.Fatalf("TxBurst accepted %d, want the %d-frame capacity prefix", n, h.txCapacity)
	}
	after := be.Stats()
	if got := after.TxPackets - before.TxPackets; got != uint64(n) {
		t.Fatalf("TxPackets advanced by %d, want %d", got, n)
	}
	if after.TxDrops != before.TxDrops {
		t.Fatalf("backend counted %d TX drops itself; overflow accounting belongs to the policy layer",
			after.TxDrops-before.TxDrops)
	}
}

func conformStats(t *testing.T, h conformanceHarness) {
	be, inject, cleanup := h.make(t)
	defer cleanup()
	defer be.Close()
	rounds := 1
	if h.rxRepeatable {
		rounds = 3
	}
	prev := be.Stats()
	for round := 0; round < rounds; round++ {
		if inject != nil {
			inject(t)
			for q := 0; q < be.Queues(); q++ {
				drainRx(be, q)
			}
		}
		be.TxBurst(0, [][]byte{conformanceFrame(300 + round)})
		cur := be.Stats()
		if cur.RxPackets < prev.RxPackets || cur.TxPackets < prev.TxPackets ||
			cur.RxDrops < prev.RxDrops || cur.TxDrops < prev.TxDrops {
			t.Fatalf("stats went backwards: %+v -> %+v", prev, cur)
		}
		if cur.TxPackets == prev.TxPackets {
			t.Fatalf("TxPackets flat across an accepted transmit: %+v", cur)
		}
		prev = cur
	}
}

func conformQueueError(t *testing.T, h conformanceHarness) {
	be, _, cleanup := h.make(t)
	defer cleanup()
	// A healthy backend reports nil from every queue: fatal errors are
	// reserved for unpollable-away conditions, never ordinary emptiness.
	for q := 0; q < be.Queues(); q++ {
		if err := be.QueueError(q); err != nil {
			t.Fatalf("healthy backend queue %d reports %v, want nil", q, err)
		}
	}
	if err := be.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// After Close the backend was intentionally released — not a failure.
	for q := 0; q < be.Queues(); q++ {
		if err := be.QueueError(q); err != nil {
			t.Fatalf("closed backend queue %d reports %v, want nil", q, err)
		}
	}
}

// closeCountBackend counts Close calls reaching the wrapped backend, so the
// close-race check can assert exactly-once release through the Port layer.
type closeCountBackend struct {
	PortBackend
	closes atomic.Int32
}

func (b *closeCountBackend) Close() error {
	b.closes.Add(1)
	return b.PortBackend.Close()
}

// conformCloseRace drives a switch over the backend with live workers and
// races two concurrent Switch.Close calls against them: the backend must be
// released exactly once, bursts after Close must return 0, and the workers
// must exit cleanly.
func conformCloseRace(t *testing.T, h conformanceHarness) {
	be, _, cleanup := h.make(t)
	defer cleanup()
	ccb := &closeCountBackend{PortBackend: be}
	sw := NewSwitchWithConfig(DatapathFunc(dropDatapath), SwitchConfig{Backends: []PortBackend{ccb}})
	stop := sw.RunWorkers(1)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := sw.Close(); err != nil {
				t.Errorf("racing Close: %v", err)
			}
		}()
	}
	wg.Wait()
	stop()
	if n := ccb.closes.Load(); n != 1 {
		t.Fatalf("backend Close reached the backend %d times, want exactly 1", n)
	}
	// Close after the workers stopped stays idempotent through the Port.
	if err := sw.Close(); err != nil {
		t.Fatalf("post-race Close: %v", err)
	}
	if n := ccb.closes.Load(); n != 1 {
		t.Fatalf("idempotent re-Close reached the backend (%d calls)", n)
	}
}

func conformClose(t *testing.T, h conformanceHarness) {
	be, _, cleanup := h.make(t)
	defer cleanup()
	if err := be.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := be.Close(); err != nil {
		t.Fatalf("second Close: %v (must be idempotent)", err)
	}
	out := make([][]byte, 4)
	for q := 0; q < be.Queues(); q++ {
		if n := be.RxBurst(q, out); n != 0 {
			t.Fatalf("RxBurst after Close = %d, want 0", n)
		}
	}
	// TxBurst after Close must not panic; in-memory backends may still
	// accept (nothing to release), real sockets must refuse.
	_ = be.TxBurst(0, [][]byte{conformanceFrame(400)})
}

// drainRx empties queue q (bounded, so a misbehaving backend cannot hang the
// suite).
func drainRx(be PortBackend, q int) {
	out := make([][]byte, 32)
	for i := 0; i < 1024; i++ {
		if be.RxBurst(q, out) == 0 {
			return
		}
	}
}

// isConformanceFrame reports whether f carries the suite's magic prefix and
// ethertype, distinguishing injected frames from kernel noise on real
// interfaces.
func isConformanceFrame(f []byte) bool {
	return len(f) >= 14 && f[12] == 0x88 && f[13] == 0xb5 &&
		bytes.HasPrefix(f, []byte{0x02, 0xe5, 0x17, 0xc4})
}

// collectRx gathers delivered frames from queue q: exact backends deliver
// synchronously (stop at the first empty burst), noise-tolerant ones are
// polled with a deadline until want frames bearing the suite's magic
// arrived.  Frames are copied out because backends may recycle their
// delivery buffers.
func collectRx(be PortBackend, q, want int, exact bool) [][]byte {
	var got [][]byte
	matched := 0
	out := make([][]byte, 4) // smaller than the injected set: exercises burst resumption
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := be.RxBurst(q, out)
		for i := 0; i < n; i++ {
			got = append(got, append([]byte(nil), out[i]...))
			if isConformanceFrame(out[i]) {
				matched++
			}
		}
		if n == 0 {
			if exact || matched >= want || time.Now().After(deadline) {
				return got
			}
			time.Sleep(time.Millisecond)
		}
	}
}
