package dpdk

import (
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"eswitch/internal/pcap"
	"eswitch/internal/pkt"
)

// ErrTraceExhausted is the fatal queue error a non-looping replay reports
// once a queue has delivered its last frame: the port supervisor sees it and
// transitions the port Down (there is nothing to reopen), replacing the old
// ad-hoc Exhausted() polling as the link-state signal.
var ErrTraceExhausted = errors.New("dpdk: pcap trace exhausted")

// PcapBackend replays a captured trace through the switch: every record of a
// classic libpcap file becomes an RX frame, demultiplexed across the
// configured queues by the same symmetric RSS hash a multi-queue NIC would
// use, so a real capture exercises the pipeline with its true packet-size
// and flow-arrival distributions instead of pktgen synthetics.
//
// The whole trace is preloaded at open (like a warmed page cache) and
// delivery recycles per-queue slot buffers the way NIC DMA rings recycle
// descriptors: a frame returned by RxBurst is valid only until the next
// RxBurst on that queue, and the steady-state replay path allocates nothing
// and takes no locks.  Transmission is a counted sink — replay measures the
// pipeline, not a wire — so pair pcap ingress ports with NullBackend egress
// ports.
//
// Replay is flat-out by default (benchmarks); Pace schedules each frame at
// its capture timestamp scaled by Speed, each queue keeping its own replay
// clock started at its first poll.
type PcapBackend struct {
	queues []pcapQueue
	loop   bool
	pace   bool
	speed  float64
	// traceDur spaces successive loops of a paced replay: the capture's
	// first-to-last span, added to every frame's due time per completed
	// loop.
	traceDur time.Duration

	rxPackets atomic.Uint64
	txPackets atomic.Uint64
	closed    atomic.Bool
}

// pcapQueue is one RX queue's share of the trace.  Each queue has exactly
// one polling worker, so none of this needs synchronization.
type pcapQueue struct {
	frames [][]byte
	// rel holds each frame's capture timestamp relative to the trace start
	// (the paced replay schedule; unused flat-out).
	rel    []time.Duration
	cursor int
	// wrapBase accumulates traceDur per completed loop so paced replay
	// keeps its cadence across wraps.
	wrapBase time.Duration
	started  bool
	start    time.Time
	// slots are the recycled delivery buffers (grown to the caller's burst
	// size on first use, then steady-state zero-alloc).
	slots   [][]byte
	slotCap int
	// done is set by the polling worker once a non-looping queue has
	// delivered its last frame — the single-writer flag QueueError and
	// Exhausted read from other goroutines (cursor itself is unsynchronized
	// worker state).
	done atomic.Bool
}

// PcapConfig configures OpenPcapBackend.
type PcapConfig struct {
	// Queues is the RX queue count frames are RSS-demultiplexed over
	// (<= 0 selects 1).
	Queues int
	// Loop restarts the trace when it runs out instead of going quiet.
	Loop bool
	// Pace delivers each frame at its capture timestamp (scaled by Speed)
	// instead of flat-out.
	Pace bool
	// Speed is the paced-replay time-dilation factor: 1.0 replays at
	// capture rate, 10 at ten times it (<= 0 selects 1.0).  Ignored
	// flat-out.
	Speed float64
	// SnapLen truncates frames longer than this many bytes at load
	// (<= 0 keeps full captured length).
	SnapLen int
}

// OpenPcapBackend preloads a classic libpcap capture file into a replay
// backend.
func OpenPcapBackend(path string, cfg PcapConfig) (*PcapBackend, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dpdk: pcap backend: %w", err)
	}
	defer f.Close()
	records, err := pcap.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("dpdk: pcap backend %s: %w", path, err)
	}
	return NewPcapBackend(records, cfg)
}

// NewPcapBackend builds a replay backend from already-decoded capture
// records (what OpenPcapBackend does after reading the file; tests and
// generators use it directly).
func NewPcapBackend(records []pcap.Packet, cfg PcapConfig) (*PcapBackend, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("dpdk: pcap backend: empty trace")
	}
	nq := cfg.Queues
	if nq < 1 {
		nq = 1
	}
	speed := cfg.Speed
	if speed <= 0 {
		speed = 1.0
	}
	b := &PcapBackend{
		queues: make([]pcapQueue, nq),
		loop:   cfg.Loop,
		pace:   cfg.Pace,
		speed:  speed,
	}
	t0 := records[0].Ts
	maxLen := 0
	for _, rec := range records {
		data := rec.Data
		if cfg.SnapLen > 0 && len(data) > cfg.SnapLen {
			data = data[:cfg.SnapLen]
		}
		// Copy out of the decoder's buffers so the trace owns its frames.
		frame := append([]byte(nil), data...)
		if len(frame) > maxLen {
			maxLen = len(frame)
		}
		q := 0
		if nq > 1 {
			q = int(pkt.RSSHash(frame) % uint32(nq))
		}
		pq := &b.queues[q]
		pq.frames = append(pq.frames, frame)
		rel := rec.Ts.Sub(t0)
		if rel < 0 {
			rel = 0 // out-of-order capture timestamps deliver immediately
		}
		pq.rel = append(pq.rel, rel)
		if rel > b.traceDur {
			b.traceDur = rel
		}
	}
	for i := range b.queues {
		b.queues[i].slotCap = maxLen
		// A queue the RSS split left empty has nothing to deliver: mark it
		// exhausted up front so it never has to be polled to report so.
		if !b.loop && len(b.queues[i].frames) == 0 {
			b.queues[i].done.Store(true)
		}
	}
	return b, nil
}

// Queues implements PortBackend.
func (b *PcapBackend) Queues() int { return len(b.queues) }

// RxBurst implements PortBackend: deliver the next due frames of queue q
// into recycled slot buffers.  Flat-out replay is bounded only by the
// caller's burst size; paced replay delivers frames whose scaled capture
// timestamp has elapsed on this queue's clock (one time.Now per poll, never
// per frame).
func (b *PcapBackend) RxBurst(q int, out [][]byte) int {
	if b.closed.Load() {
		return 0
	}
	pq := &b.queues[q]
	if pq.cursor >= len(pq.frames) {
		if !b.loop || len(pq.frames) == 0 {
			pq.done.Store(true)
			return 0
		}
		pq.cursor = 0
		pq.wrapBase += b.traceDur
	}
	n := len(pq.frames) - pq.cursor
	if n > len(out) {
		n = len(out)
	}
	if b.pace && n > 0 {
		if !pq.started {
			pq.started = true
			pq.start = time.Now()
		}
		budget := time.Duration(float64(time.Since(pq.start)) * b.speed)
		due := 0
		for due < n && pq.wrapBase+pq.rel[pq.cursor+due] <= budget {
			due++
		}
		n = due
	}
	for i := 0; i < n; i++ {
		src := pq.frames[pq.cursor+i]
		if i >= len(pq.slots) {
			pq.slots = append(pq.slots, make([]byte, pq.slotCap))
		}
		slot := pq.slots[i][:len(src)]
		copy(slot, src)
		out[i] = slot
	}
	if n > 0 {
		pq.cursor += n
		b.rxPackets.Add(uint64(n))
		if !b.loop && pq.cursor >= len(pq.frames) {
			pq.done.Store(true)
		}
	}
	return n
}

// TxBurst implements PortBackend: replay transmission is a counted sink.
func (b *PcapBackend) TxBurst(q int, frames [][]byte) int {
	if b.closed.Load() {
		return 0
	}
	if len(frames) > 0 {
		b.txPackets.Add(uint64(len(frames)))
	}
	return len(frames)
}

// TransmitSlow implements SlowPathTransmitter (counted and discarded).
func (b *PcapBackend) TransmitSlow(frame []byte) bool {
	if b.closed.Load() {
		return false
	}
	b.txPackets.Add(1)
	return true
}

// Exhausted reports whether a non-looping replay has delivered every frame
// of every queue (always false with Loop).  It reads the per-queue done
// flags, so it is safe from any goroutine while workers poll.
func (b *PcapBackend) Exhausted() bool {
	if b.loop {
		return false
	}
	for i := range b.queues {
		if !b.queues[i].done.Load() {
			return false
		}
	}
	return true
}

// QueueError implements PortBackend: an exhausted non-looping queue is a
// fatal condition (the trace cannot produce more frames), which is how the
// port supervisor learns the replay ended and takes the port Down.
func (b *PcapBackend) QueueError(q int) error {
	if b.closed.Load() {
		return nil
	}
	if b.queues[q].done.Load() {
		return ErrTraceExhausted
	}
	return nil
}

// TotalFrames returns the number of frames loaded from the trace.
func (b *PcapBackend) TotalFrames() int {
	n := 0
	for i := range b.queues {
		n += len(b.queues[i].frames)
	}
	return n
}

// Stats implements PortBackend.
func (b *PcapBackend) Stats() PortStats {
	return PortStats{
		RxPackets: b.rxPackets.Load(),
		TxPackets: b.txPackets.Load(),
	}
}

// Close implements PortBackend (idempotent; the file was fully read at
// open, so Close only quiesces delivery).
func (b *PcapBackend) Close() error {
	b.closed.Store(true)
	return nil
}
