//go:build !linux

package dpdk

import "fmt"

// AFPacketBackend requires Linux packet sockets; this stub keeps the API
// present (and the -backend flag parseable) on other platforms.
type AFPacketBackend struct{}

// NewAFPacketBackend always fails off Linux.
func NewAFPacketBackend(iface string) (*AFPacketBackend, error) {
	return nil, fmt.Errorf("dpdk: afpacket backend requires Linux (AF_PACKET sockets)")
}

// Interface implements the Linux backend's accessor.
func (b *AFPacketBackend) Interface() string { return "" }

// Queues implements PortBackend.
func (b *AFPacketBackend) Queues() int { return 1 }

// RxBurst implements PortBackend.
func (b *AFPacketBackend) RxBurst(q int, out [][]byte) int { return 0 }

// TxBurst implements PortBackend.
func (b *AFPacketBackend) TxBurst(q int, frames [][]byte) int { return 0 }

// Stats implements PortBackend.
func (b *AFPacketBackend) Stats() PortStats { return PortStats{} }

// QueueError implements PortBackend.
func (b *AFPacketBackend) QueueError(q int) error { return nil }

// Reopen implements ReopenableBackend.
func (b *AFPacketBackend) Reopen() error {
	return fmt.Errorf("dpdk: afpacket backend requires Linux (AF_PACKET sockets)")
}

// Close implements PortBackend.
func (b *AFPacketBackend) Close() error { return nil }
