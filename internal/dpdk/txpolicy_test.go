package dpdk

import (
	"fmt"
	"testing"
	"time"
)

func TestParseTxPolicy(t *testing.T) {
	for name, want := range map[string]TxPolicy{"drop": TxDrop, "block": TxBlock, "spill": TxSpill} {
		got, err := ParseTxPolicy(name)
		if err != nil || got != want {
			t.Fatalf("ParseTxPolicy(%q) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Fatalf("TxPolicy(%v).String() = %q", got, got.String())
		}
	}
	if _, err := ParseTxPolicy("bogus"); err == nil {
		t.Fatal("bogus policy must not parse")
	}
}

// fillTxViaPoll injects seq-numbered frames into port 1 and polls them
// through ws, returning how many were injected.  Frames carry their sequence
// number in the first two bytes so order can be asserted on the TX side.
func fillTxViaPoll(t *testing.T, sw *Switch, ws *workerState, p1 *Port, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		if !p1.InjectOn(AutoQueue, []byte{byte(i), byte(i >> 8)}) {
			t.Fatalf("inject %d failed (RX ring full)", i)
		}
	}
	sw.pollPorts(ws, nil)
}

// TestTxPolicyDrop asserts the NIC-like default: overflow frames are dropped
// immediately, with no retries.
func TestTxPolicyDrop(t *testing.T) {
	sw := NewSwitchWithConfig(DatapathFunc(echoDatapath), SwitchConfig{NumPorts: 2, RingSize: 8, Queues: 1}) // TX capacity 7
	ws := sw.newWorkerState(allQueues(1), 0, nil)
	p1, _ := sw.Port(1)
	p2, _ := sw.Port(2)

	fillTxViaPoll(t, sw, ws, p1, 0, 7) // exactly fills the TX ring
	fillTxViaPoll(t, sw, ws, p1, 7, 7) // entirely overflow
	st := sw.Stats()
	if st.TxDrops != 7 || st.TxRetries != 0 {
		t.Fatalf("drop policy stats: %+v, want 7 drops, 0 retries", st)
	}
	if ps := p2.Stats(); ps.TxDrops != 7 || ps.TxPackets != 7 {
		t.Fatalf("port stats: %+v", ps)
	}
	// The frames that made it are the first 7, in receive order.
	for i := 0; i < 7; i++ {
		f, ok := p2.be.(*RingBackend).TxDequeue(0)
		if !ok || f[0] != byte(i) {
			t.Fatalf("tx slot %d: got %v ok=%v", i, f, ok)
		}
	}
}

// TestTxPolicyBlockGivesUpAfterBoundedRetries asserts the documented retry
// accounting with no consumer: every remaining frame is re-attempted once
// per round for txRetryLimit rounds, then dropped.
func TestTxPolicyBlockGivesUpAfterBoundedRetries(t *testing.T) {
	sw := NewSwitchWithConfig(DatapathFunc(echoDatapath), SwitchConfig{NumPorts: 2, RingSize: 8, Queues: 1})
	sw.SetTxPolicy(TxBlock)
	ws := sw.newWorkerState(allQueues(1), 0, nil)
	p1, _ := sw.Port(1)

	fillTxViaPoll(t, sw, ws, p1, 0, 7)
	fillTxViaPoll(t, sw, ws, p1, 7, 3) // 3 frames cannot fit, nobody drains
	st := sw.Stats()
	if st.TxDrops != 3 {
		t.Fatalf("block policy drops: %+v, want 3", st)
	}
	if want := uint64(3 * txRetryLimit); st.TxRetries != want {
		t.Fatalf("block policy retries: %d, want %d (3 frames × %d rounds)", st.TxRetries, want, txRetryLimit)
	}
}

// TestTxPolicyBlockDeliversUnderDrain asserts that with a live consumer the
// block policy delivers every frame in receive order and counts zero drops.
func TestTxPolicyBlockDeliversUnderDrain(t *testing.T) {
	sw := NewSwitchWithConfig(DatapathFunc(echoDatapath), SwitchConfig{NumPorts: 2, RingSize: 8, Queues: 1})
	sw.SetTxPolicy(TxBlock)
	ws := sw.newWorkerState(allQueues(1), 0, nil)
	p1, _ := sw.Port(1)
	p2, _ := sw.Port(2)

	const n = 200
	got := make(chan []byte, n)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for received := 0; received < n; {
			f, ok := p2.be.(*RingBackend).TxDequeue(0)
			if !ok {
				time.Sleep(10 * time.Microsecond)
				continue
			}
			got <- f
			received++
		}
	}()
	for base := 0; base < n; base += 5 {
		fillTxViaPoll(t, sw, ws, p1, base, 5)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("consumer timed out")
	}
	close(got)
	i := 0
	for f := range got {
		if f[0] != byte(i) || f[1] != byte(i>>8) {
			t.Fatalf("receive order broken at %d: got %d", i, int(f[0])|int(f[1])<<8)
		}
		i++
	}
	if st := sw.Stats(); st.TxDrops != 0 {
		t.Fatalf("block policy dropped %d frames despite a live consumer", st.TxDrops)
	}
}

// TestTxPolicySpillPreservesOrderAcrossRetries asserts the spill policy
// parks overflow in the worker's backlog, re-attempts it ahead of newly
// staged frames on later polls, counts the documented retries, and keeps the
// whole TX stream in receive order.
func TestTxPolicySpillPreservesOrderAcrossRetries(t *testing.T) {
	sw := NewSwitchWithConfig(DatapathFunc(echoDatapath), SwitchConfig{NumPorts: 2, RingSize: 8, Queues: 1}) // TX capacity 7
	sw.SetTxPolicy(TxSpill)
	ws := sw.newWorkerState(allQueues(1), 0, nil)
	p1, _ := sw.Port(1)
	p2, _ := sw.Port(2)

	fillTxViaPoll(t, sw, ws, p1, 0, 7) // fills the TX ring
	fillTxViaPoll(t, sw, ws, p1, 7, 7) // all 7 spill
	if st := sw.Stats(); st.TxDrops != 0 || st.TxRetries != 0 {
		t.Fatalf("first overflow is not a retry and must not drop: %+v", st)
	}
	if ws.spillPending != 7 {
		t.Fatalf("spill backlog %d, want 7", ws.spillPending)
	}

	// Drain 3 slots and poll with no new traffic: 3 spilled frames move,
	// all 7 count one retry each.
	for i := 0; i < 3; i++ {
		if f, ok := p2.be.(*RingBackend).TxDequeue(0); !ok || f[0] != byte(i) {
			t.Fatalf("drain %d: got %v ok=%v", i, f, ok)
		}
	}
	sw.pollPorts(ws, nil)
	if st := sw.Stats(); st.TxRetries != 7 || st.TxDrops != 0 {
		t.Fatalf("after partial re-attempt: %+v, want 7 retries", st)
	}
	if ws.spillPending != 4 {
		t.Fatalf("spill backlog %d, want 4", ws.spillPending)
	}

	// Drain what is in the ring — frames 3..9, still in receive order —
	// then poll again: the last 4 spilled frames flush (4 more retries).
	for i := 3; i <= 9; i++ {
		f, ok := p2.be.(*RingBackend).TxDequeue(0)
		if !ok || f[0] != byte(i) {
			t.Fatalf("drain %d: got %v ok=%v", i, f, ok)
		}
	}
	sw.pollPorts(ws, nil)
	if ws.spillPending != 0 {
		t.Fatalf("spill backlog %d after full drain, want 0", ws.spillPending)
	}
	if st := sw.Stats(); st.TxRetries != 11 || st.TxDrops != 0 {
		t.Fatalf("final stats: %+v, want 11 retries, 0 drops", st)
	}
	// The last 4 frames (10..13) must come out in receive order.
	for i := 10; i < 14; i++ {
		f, ok := p2.be.(*RingBackend).TxDequeue(0)
		if !ok || f[0] != byte(i) {
			t.Fatalf("tx order broken at %d: got %v ok=%v", i, f, ok)
		}
	}
}

// TestTxPolicySpillBacklogBounded asserts the spill backlog caps at spillCap
// frames per port and overflow beyond it is dropped.
func TestTxPolicySpillBacklogBounded(t *testing.T) {
	sw := NewSwitchWithConfig(DatapathFunc(echoDatapath), SwitchConfig{NumPorts: 2, RingSize: 8, Queues: 1}) // TX capacity 7
	sw.SetTxPolicy(TxSpill)
	ws := sw.newWorkerState(allQueues(1), 0, nil)
	p1, _ := sw.Port(1)

	const rounds = 150 // 150×7 = 1050 frames: 7 in the ring, spillCap parked, 19 dropped
	for r := 0; r < rounds; r++ {
		fillTxViaPoll(t, sw, ws, p1, r*7, 7)
	}
	total := rounds * 7
	wantDrops := uint64(total - 7 - spillCap)
	st := sw.Stats()
	if st.TxDrops != wantDrops {
		t.Fatalf("bounded spill drops: %d, want %d", st.TxDrops, wantDrops)
	}
	if ws.spillPending != spillCap {
		t.Fatalf("spill backlog %d, want %d", ws.spillPending, spillCap)
	}
}

// TestRunWorkersAbandonSpillOnStop asserts a stopping worker accounts its
// undeliverable backlog as drops, so Stats stays truthful after stop().
func TestRunWorkersAbandonSpillOnStop(t *testing.T) {
	sw := NewSwitchWithConfig(DatapathFunc(echoDatapath), SwitchConfig{NumPorts: 2, RingSize: 8, Queues: 1})
	sw.SetTxPolicy(TxSpill)
	p1, _ := sw.Port(1)
	stop := sw.RunWorkers(1)
	const n = 14 // 7 fill the TX ring, 7 spill
	injected := 0
	for i := 0; injected < n && i < 10*n; i++ {
		if p1.InjectOn(AutoQueue, []byte{byte(injected)}) {
			injected++
		} else {
			time.Sleep(100 * time.Microsecond)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for sw.Stats().Processed < uint64(injected) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	st := sw.Stats()
	if st.Processed != uint64(injected) {
		t.Fatalf("processed %d of %d", st.Processed, injected)
	}
	// Nothing ever drained port 2: 7 frames sit in its TX ring, the other 7
	// were spilled and must have been accounted as drops on shutdown.
	if got := st.TxDrops + 7; got != uint64(injected) {
		t.Fatalf("stats after stop: %+v — %d transmitted + %d dropped ≠ %d injected",
			st, 7, st.TxDrops, injected)
	}
}

func TestWorkerStatsStringsAndFold(t *testing.T) {
	// Sanity: the TX counters surface through the folded WorkerStats.
	sw := NewSwitchWithConfig(DatapathFunc(echoDatapath), SwitchConfig{NumPorts: 2, RingSize: 8, Queues: 1})
	ws := sw.newWorkerState(allQueues(1), 0, nil)
	p1, _ := sw.Port(1)
	fillTxViaPoll(t, sw, ws, p1, 0, 7)
	fillTxViaPoll(t, sw, ws, p1, 7, 2)
	sw.retireCounters(ws.counters)
	st := sw.Stats()
	if st.TxDrops != 2 {
		t.Fatalf("retired TX drops not folded: %+v", st)
	}
	if s := fmt.Sprintf("%+v", st); s == "" {
		t.Fatal("unprintable stats")
	}
}

// TestPollOnceResolvesSpillBeforePooling asserts the anonymous PollOnce path
// cannot strand frames in a pooled state's spill backlog: any backlog left
// after the poll is final-attempted and the remainder accounted as drops.
func TestPollOnceResolvesSpillBeforePooling(t *testing.T) {
	sw := NewSwitchWithConfig(DatapathFunc(echoDatapath), SwitchConfig{NumPorts: 2, RingSize: 8, Queues: 1}) // TX capacity 7
	sw.SetTxPolicy(TxSpill)
	p1, _ := sw.Port(1)
	for i := 0; i < 7; i++ {
		if !p1.InjectOn(AutoQueue, []byte{byte(i)}) {
			t.Fatalf("inject %d", i)
		}
	}
	sw.PollOnce(nil) // fills the TX ring exactly
	for i := 7; i < 14; i++ {
		if !p1.InjectOn(AutoQueue, []byte{byte(i)}) {
			t.Fatalf("inject %d", i)
		}
	}
	sw.PollOnce(nil) // 7 frames overflow; the pooled state must not keep them
	st := sw.Stats()
	if st.TxDrops != 7 {
		t.Fatalf("pooled spill backlog not accounted: %+v, want 7 TxDrops", st)
	}
	if st.TxRetries == 0 {
		t.Fatalf("final attempt should count retries: %+v", st)
	}
}
