package dpdk

import (
	"testing"

	"eswitch/internal/slowpath"
)

// checkPuntInvariant asserts the failure plane's accounting identity (the
// canonical statement lives on WorkerStats.CheckInvariants).
func checkPuntInvariant(t *testing.T, sw *Switch, phase string) {
	t.Helper()
	if err := sw.Stats().CheckInvariants(true); err != nil {
		t.Fatalf("%s: %v", phase, err)
	}
}

// TestFailStandaloneSuppressesPuntsKeepsForwarding: in fail-standalone a
// pure punt is suppressed (not queued, not dropped-counted) and the
// forwarding half of a dual verdict keeps transmitting.
func TestFailStandaloneSuppressesPuntsKeepsForwarding(t *testing.T) {
	sw := NewSwitchWithConfig(puntingDatapath{}, SwitchConfig{NumPorts: 2, RingSize: 64, Queues: 1})
	rings := sw.armPuntRings(16, 0)
	sw.SetFailMode(FailStandalone)
	port1, _ := sw.Port(1)
	port2, _ := sw.Port(2)

	port1.InjectOn(AutoQueue, []byte{0x01}) // pure forward
	port1.InjectOn(AutoQueue, []byte{0x02}) // pure punt
	port1.InjectOn(AutoQueue, []byte{0x03}) // forward AND punt
	sw.PollOnce(nil)

	st := sw.Stats()
	if st.Forwarded != 2 {
		t.Fatalf("forwarded %d, want 2 (0x01 and the dual verdict's output half)", st.Forwarded)
	}
	if got := port2.DrainTx(); got != 2 {
		t.Fatalf("TX staged %d frames, want 2", got)
	}
	if st.ToCtrl != 2 || st.PuntSuppressed != 2 {
		t.Fatalf("punt halves not suppressed: toCtrl %d, suppressed %d (want 2, 2)", st.ToCtrl, st.PuntSuppressed)
	}
	if st.Punts != 0 || st.PuntDrops != 0 {
		t.Fatalf("standalone queued punts: %d/%d", st.Punts, st.PuntDrops)
	}
	if st.Dropped != 0 {
		t.Fatalf("standalone dropped %d packets", st.Dropped)
	}
	var rec slowpath.PuntRecord
	if rings[0].Pop(&rec) {
		t.Fatalf("a punt reached the ring while degraded: %+v", rec)
	}
	checkPuntInvariant(t, sw, "standalone")

	// Back to normal: the same traffic punts again.
	sw.SetFailMode(FailNormal)
	port1.InjectOn(AutoQueue, []byte{0x02})
	sw.PollOnce(nil)
	if st := sw.Stats(); st.Punts != 1 {
		t.Fatalf("punt after recovery not queued: %+v", st)
	}
	if !rings[0].Pop(&rec) {
		t.Fatal("recovered punt missing from the ring")
	}
	checkPuntInvariant(t, sw, "recovered")
}

// TestFailSecureDropsControllerDependentPackets: in fail-secure any packet
// whose verdict punts — even one that also forwards — is discarded whole,
// counted in both PuntSuppressed and Dropped; purely local verdicts are
// untouched.
func TestFailSecureDropsControllerDependentPackets(t *testing.T) {
	sw := NewSwitchWithConfig(puntingDatapath{}, SwitchConfig{NumPorts: 2, RingSize: 64, Queues: 1})
	sw.armPuntRings(16, 0)
	sw.SetFailMode(FailSecure)
	port1, _ := sw.Port(1)
	port2, _ := sw.Port(2)

	port1.InjectOn(AutoQueue, []byte{0x01}) // pure forward: unaffected
	port1.InjectOn(AutoQueue, []byte{0x02}) // pure punt: dropped
	port1.InjectOn(AutoQueue, []byte{0x03}) // dual verdict: dropped whole, output half included
	sw.PollOnce(nil)

	st := sw.Stats()
	if st.Forwarded != 1 {
		t.Fatalf("forwarded %d, want 1 (only the purely local verdict)", st.Forwarded)
	}
	if got := port2.DrainTx(); got != 1 {
		t.Fatalf("TX staged %d frames, want 1", got)
	}
	if st.ToCtrl != 2 || st.PuntSuppressed != 2 || st.Dropped != 2 {
		t.Fatalf("secure accounting: toCtrl %d, suppressed %d, dropped %d (want 2, 2, 2)",
			st.ToCtrl, st.PuntSuppressed, st.Dropped)
	}
	if st.Punts != 0 {
		t.Fatalf("secure queued %d punts", st.Punts)
	}
	checkPuntInvariant(t, sw, "secure")
}

// TestPuntStormFilter: with the filter armed, the first punt of a microflow
// passes, repeats within the window are withheld (counted in PuntFiltered),
// a distinct microflow is not collaterally filtered, and the entry expires
// after `window` idle polls.
func TestPuntStormFilter(t *testing.T) {
	const window = 3
	sw := NewSwitchWithConfig(puntingDatapath{}, SwitchConfig{NumPorts: 2, RingSize: 64, Queues: 1})
	rings := sw.armPuntRings(64, 0)
	sw.SetPuntFilter(64, window)
	port1, _ := sw.Port(1)

	// The filter lives in worker-private state, so the test must poll with
	// ONE worker state throughout, the way a dedicated RunWorkers loop does.
	// PollOnce's pooled state is not stable enough: under the race detector
	// sync.Pool deliberately drops items, which would hand every poll a
	// fresh (empty) filter.
	ws := sw.wsPool.Get().(*workerState)
	poll := func() { sw.pollPorts(ws, nil) }

	elephant := []byte{0x02, 0xaa, 0xbb, 0xcc}
	mouse := []byte{0x02, 0x11, 0x22, 0x33}

	// First punt passes; the repeat in the very next poll is filtered.
	port1.InjectOn(AutoQueue, elephant)
	poll()
	port1.InjectOn(AutoQueue, elephant)
	poll()
	st := sw.Stats()
	if st.Punts != 1 || st.PuntFiltered != 1 {
		t.Fatalf("after repeat: queued %d, filtered %d (want 1, 1)", st.Punts, st.PuntFiltered)
	}

	// A distinct microflow still punts — the filter is per-flow, not global.
	port1.InjectOn(AutoQueue, mouse)
	poll()
	if st := sw.Stats(); st.Punts != 2 {
		t.Fatalf("distinct flow was filtered: %+v", st)
	}

	// A filtered repeat keeps its entry fresh, so expiry needs `window`+1
	// punt-free polls after the LAST suppressed attempt.
	for i := 0; i <= window; i++ {
		poll()
	}
	port1.InjectOn(AutoQueue, elephant)
	poll()
	st = sw.Stats()
	if st.Punts != 3 {
		t.Fatalf("expired entry still filtering: queued %d, filtered %d", st.Punts, st.PuntFiltered)
	}
	if st.PuntFiltered != 1 {
		t.Fatalf("filtered count drifted: %d", st.PuntFiltered)
	}
	checkPuntInvariant(t, sw, "storm filter")

	// Everything that passed is actually in the ring: elephant, mouse,
	// elephant-after-expiry.
	var rec slowpath.PuntRecord
	n := 0
	for rings[0].Pop(&rec) {
		n++
	}
	if n != 3 {
		t.Fatalf("ring holds %d punts, want 3", n)
	}
}

// TestPuntFilterOffByDefault: without SetPuntFilter every repeat punts — the
// filter must be strictly opt-in.
func TestPuntFilterOffByDefault(t *testing.T) {
	sw := NewSwitchWithConfig(puntingDatapath{}, SwitchConfig{NumPorts: 2, RingSize: 64, Queues: 1})
	sw.armPuntRings(64, 0)
	port1, _ := sw.Port(1)
	for i := 0; i < 5; i++ {
		port1.InjectOn(AutoQueue, []byte{0x02, 0xaa})
		sw.PollOnce(nil)
	}
	st := sw.Stats()
	if st.Punts != 5 || st.PuntFiltered != 0 {
		t.Fatalf("unarmed filter interfered: queued %d, filtered %d", st.Punts, st.PuntFiltered)
	}
}
