package dpdk

import (
	"fmt"
	"strings"
)

// This file parses the textual backend specification shared by eswitchd's
// -backend flag and the e2e harnesses, so the command line and the tests
// exercise the same construction path.
//
// The specification is a comma-separated list, one item per port in port-ID
// order:
//
//	ring                 simulated SPSC rings (the default)
//	null                 TX sink (never receives, discards and counts sends)
//	pcap:<file>          replay the capture file's frames as this port's RX
//	afpacket:<iface>     raw AF_PACKET socket on a Linux interface
//
// A list shorter than the pipeline's port count is padded with null sinks —
// the natural companion of a single pcap ingress — and the single word
// "ring" (or an empty spec) selects the all-ring default construction.

// BackendSpecConfig carries the knobs backend items inherit from the
// surrounding command line.
type BackendSpecConfig struct {
	// RingSize is the frame capacity of ring items (<= 0 selects 4096).
	RingSize int
	// Queues is the queue-pair count of ring and null items (<= 0 selects 1).
	Queues int
	// Pcap configures pcap items (its Queues field falls back to Queues).
	Pcap PcapConfig
}

// IsRingSpec reports whether the specification selects the default all-ring
// construction (empty or the single word "ring").
func IsRingSpec(spec string) bool {
	spec = strings.TrimSpace(spec)
	return spec == "" || spec == "ring"
}

// ParseBackendSpec builds one backend per item of spec, padding with null
// sinks up to numPorts.  It returns nil (and no error) for the all-ring
// default, and closes any backends it already opened when a later item
// fails.
func ParseBackendSpec(spec string, numPorts int, cfg BackendSpecConfig) ([]PortBackend, error) {
	if IsRingSpec(spec) {
		return nil, nil
	}
	items := strings.Split(spec, ",")
	if len(items) > numPorts {
		return nil, fmt.Errorf("dpdk: backend spec has %d items but the pipeline has %d ports", len(items), numPorts)
	}
	queues := cfg.Queues
	if queues < 1 {
		queues = 1
	}
	pcapCfg := cfg.Pcap
	if pcapCfg.Queues <= 0 {
		pcapCfg.Queues = queues
	}
	var backends []PortBackend
	fail := func(err error) ([]PortBackend, error) {
		for _, be := range backends {
			be.Close()
		}
		return nil, err
	}
	for i, raw := range items {
		item := strings.TrimSpace(raw)
		kind, arg, _ := strings.Cut(item, ":")
		switch kind {
		case "ring":
			backends = append(backends, NewRingBackend(cfg.RingSize, queues))
		case "null":
			backends = append(backends, NewNullBackend(queues))
		case "pcap":
			if arg == "" {
				return fail(fmt.Errorf("dpdk: backend item %d: pcap wants a file (pcap:<file>)", i+1))
			}
			be, err := OpenPcapBackend(arg, pcapCfg)
			if err != nil {
				return fail(err)
			}
			backends = append(backends, be)
		case "afpacket":
			if arg == "" {
				return fail(fmt.Errorf("dpdk: backend item %d: afpacket wants an interface (afpacket:<iface>)", i+1))
			}
			be, err := NewAFPacketBackend(arg)
			if err != nil {
				return fail(err)
			}
			backends = append(backends, be)
		default:
			return fail(fmt.Errorf("dpdk: backend item %d: unknown backend %q (want ring, null, pcap:<file> or afpacket:<iface>)", i+1, item))
		}
	}
	for len(backends) < numPorts {
		backends = append(backends, NewNullBackend(queues))
	}
	return backends, nil
}
