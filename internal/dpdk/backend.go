package dpdk

import (
	"sync/atomic"

	"eswitch/internal/pkt"
)

// This file defines the packet I/O backend abstraction.  A Port is the
// switch-facing object — accounting, TX policy, slow-path wiring — while the
// PortBackend behind it owns the actual frame I/O.  Three backends ship with
// the repository:
//
//   - RingBackend: the simulated in-memory SPSC rings every benchmark has
//     always run against.  It is the default, and the only backend the
//     zero-lock/zero-alloc worker-path assertions are stated for.
//   - PcapBackend (pcap_backend.go): replays a captured trace file through
//     the full pipeline, optionally paced by the capture timestamps —
//     realistic packet-size and flow-arrival distributions for benchmarks.
//   - AFPacketBackend (afpacket_linux.go): a raw AF_PACKET socket bound to a
//     real Linux interface, so the switch forwards real frames (veth pairs,
//     physical NICs) for the first time.
//
// NullBackend rounds the set out as a pure TX sink for replay topologies.

// AutoQueue, passed as the queue index of Port.InjectOn, steers the injected
// frame by its symmetric RSS hash — what a multi-queue NIC does in hardware.
const AutoQueue = -1

// PortBackend is the packet I/O contract a Port drives.  Implementations own
// their queue geometry and their I/O counters; the switch's worker loops
// call RxBurst/TxBurst once per queue per poll iteration, so a backend that
// neither locks nor allocates on those paths keeps the steady-state worker
// path zero-lock and zero-alloc (the ring backend's guarantee).
type PortBackend interface {
	// Queues returns the number of RX/TX queue pairs.  Queue q of every
	// port is owned by exactly one worker at a time (single-consumer RX,
	// single-producer TX); backends with one queue are driven by worker 0
	// only.
	Queues() int
	// RxBurst fills out with up to len(out) received frames from RX queue
	// q, returning the count.  The returned slices are valid until the next
	// RxBurst on the same queue — real backends recycle their receive
	// buffers — so the caller must finish transmitting (or copy) before
	// polling again.  The simulated ring backend hands out the producer's
	// own slices, which live as long as the producer keeps them.
	RxBurst(q int, out [][]byte) int
	// TxBurst transmits the longest prefix of frames on TX queue q,
	// returning how many were accepted and counting them in TxPackets.
	// Overflow accounting belongs to the caller: the switch's TX-policy
	// layer decides between dropping, retrying and spilling what did not
	// fit.
	TxBurst(q int, frames [][]byte) int
	// Stats snapshots the backend's I/O counters.
	Stats() PortStats
	// QueueError reports queue q's fatal I/O error, or nil while the queue
	// is healthy.  A fatal error is one the backend cannot recover from by
	// polling again — a dead fd (EBADF/ENETDOWN/ENXIO), an exhausted
	// non-looping trace — recorded by RxBurst/TxBurst off the return path so
	// the hot loop stays allocation-free.  The port supervisor polls this
	// off the worker path and drives the port's link-state machine from it;
	// EAGAIN-style backpressure is never fatal.  Simulated backends (ring,
	// null) are always healthy and return nil.  QueueError after Close
	// reports nil: an intentionally released backend is not a failure.
	QueueError(q int) error
	// Close releases the backend's resources.  It must be idempotent, and
	// RxBurst/TxBurst after Close must return 0 rather than panic.
	Close() error
}

// ReopenableBackend is the optional extension for backends that can
// re-acquire their I/O resource after a fatal error: the port supervisor's
// self-healing path calls Reopen under its backoff schedule while the port
// is Down.  Reopen re-dials whatever the backend wraps (AF_PACKET re-opens
// and re-binds its socket) and clears the queue-error slots on success; it
// must only be called while the port is quiesced (workers skip Down ports),
// and a failed Reopen leaves the backend Down-safe (bursts keep returning
// 0).  Backends without this extension — an exhausted pcap trace has
// nothing to re-dial — stay Down permanently.
type ReopenableBackend interface {
	Reopen() error
}

// InjectableBackend is the optional extension simulated backends implement:
// direct frame injection into the RX queues and TX draining, which is how
// tests, benchmarks and the in-process traffic generators drive a switch
// without real I/O.
type InjectableBackend interface {
	// InjectOn places a frame on RX queue q (AutoQueue = steer by RSS
	// hash), reporting false when the queue is full.
	InjectOn(q int, frame []byte) bool
	// RxQueueLen returns the number of frames waiting in RX queue q.
	RxQueueLen(q int) int
	// DrainTx empties all TX queues, returning the number of frames
	// drained (a traffic sink / loopback tester).
	DrainTx() int
}

// SlowPathTransmitter is the optional extension for controller-originated
// (PacketOut) transmission outside the worker-owned TX queues.  The ring
// backend uses a dedicated slow-path ring so the TX queues stay
// single-producer; the AF_PACKET backend sends directly (the kernel
// serializes concurrent sends on one socket).
type SlowPathTransmitter interface {
	TransmitSlow(frame []byte) bool
}

// RingBackend is the simulated packet I/O backend: N RX/TX queue pairs of
// bounded SPSC rings plus a dedicated slow-path TX ring, all in memory.  It
// is the substrate every Mpps figure in BENCH_*.json is recorded against —
// frames move at memory speed, so the numbers isolate the dataplane from NIC
// hardware — and the backend the zero-lock/zero-alloc worker-path guarantee
// is asserted on.
type RingBackend struct {
	rxq []*Ring
	txq []*Ring
	// spq carries controller-originated PacketOut frames so the slow-path
	// service never shares a worker-owned TX queue.
	spq *Ring

	rxPackets atomic.Uint64
	txPackets atomic.Uint64
	rxDrops   atomic.Uint64
	txDrops   atomic.Uint64
}

// NewRingBackend creates a ring backend with the given number of RX/TX queue
// pairs, each ring holding ringSize frames (<= 0 selects 4096).
func NewRingBackend(ringSize, queues int) *RingBackend {
	if ringSize <= 0 {
		ringSize = defaultRingSize
	}
	if queues < 1 {
		queues = 1
	}
	b := &RingBackend{}
	for q := 0; q < queues; q++ {
		b.rxq = append(b.rxq, NewRing(ringSize))
		b.txq = append(b.txq, NewRing(ringSize))
	}
	b.spq = NewRing(ringSize)
	return b
}

// Queues implements PortBackend.
func (b *RingBackend) Queues() int { return len(b.rxq) }

// RxBurst implements PortBackend: a bare SPSC dequeue, no locks, no
// allocation, no counter updates (frames were counted when injected).
func (b *RingBackend) RxBurst(q int, out [][]byte) int {
	return b.rxq[q].DequeueBurst(out)
}

// TxBurst implements PortBackend: the longest prefix that fits on the TX
// ring is accepted and counted; the caller's policy layer accounts the rest.
func (b *RingBackend) TxBurst(q int, frames [][]byte) int {
	n := b.txq[q].EnqueueBurst(frames)
	if n > 0 {
		b.txPackets.Add(uint64(n))
	}
	return n
}

// InjectOn implements InjectableBackend: the producer side of the RX rings.
// AutoQueue steers by the frame's symmetric RSS hash (what a multi-queue NIC
// does in hardware); producers that precompute the steering pass an explicit
// queue to keep injection a bare ring enqueue.
func (b *RingBackend) InjectOn(q int, frame []byte) bool {
	if q == AutoQueue {
		q = 0
		if len(b.rxq) > 1 {
			q = int(pkt.RSSHash(frame) % uint32(len(b.rxq)))
		}
	}
	if b.rxq[q].Enqueue(frame) {
		b.rxPackets.Add(1)
		return true
	}
	b.rxDrops.Add(1)
	return false
}

// RxQueueLen implements InjectableBackend.
func (b *RingBackend) RxQueueLen(q int) int { return b.rxq[q].Len() }

// DrainTx implements InjectableBackend: empty all TX queues including the
// slow-path ring.
func (b *RingBackend) DrainTx() int {
	n := 0
	for _, q := range b.txq {
		for {
			if _, ok := q.Dequeue(); !ok {
				break
			}
			n++
		}
	}
	for {
		if _, ok := b.spq.Dequeue(); !ok {
			break
		}
		n++
	}
	return n
}

// TxDequeue removes one frame from TX queue q — the consumer side of the
// simulated wire, used by loopback harnesses and tests to observe what the
// switch transmitted.
func (b *RingBackend) TxDequeue(q int) ([]byte, bool) {
	return b.txq[q].Dequeue()
}

// TransmitSlow implements SlowPathTransmitter via the dedicated slow-path
// ring (one slow-path service at a time may transmit).
func (b *RingBackend) TransmitSlow(frame []byte) bool {
	if b.spq.Enqueue(frame) {
		b.txPackets.Add(1)
		return true
	}
	b.txDrops.Add(1)
	return false
}

// Stats implements PortBackend.
func (b *RingBackend) Stats() PortStats {
	return PortStats{
		RxPackets: b.rxPackets.Load(),
		TxPackets: b.txPackets.Load(),
		RxDrops:   b.rxDrops.Load(),
		TxDrops:   b.txDrops.Load(),
	}
}

// QueueError implements PortBackend: memory never fails.
func (b *RingBackend) QueueError(q int) error { return nil }

// Close implements PortBackend.  Rings hold no external resources; Close
// exists so heterogeneous backend sets can be shut down uniformly.
func (b *RingBackend) Close() error { return nil }

// NullBackend is a pure sink: it never receives and accepts (and discards)
// every transmitted frame, counting it.  Replay topologies use it for the
// egress ports of a pcap-driven switch, where holding transmitted frames in
// rings would alias the replay backend's recycled receive buffers.
type NullBackend struct {
	queues    int
	txPackets atomic.Uint64
}

// NewNullBackend creates a sink with the given queue-pair count (minimum 1).
func NewNullBackend(queues int) *NullBackend {
	if queues < 1 {
		queues = 1
	}
	return &NullBackend{queues: queues}
}

// Queues implements PortBackend.
func (b *NullBackend) Queues() int { return b.queues }

// RxBurst implements PortBackend: a sink never receives.
func (b *NullBackend) RxBurst(q int, out [][]byte) int { return 0 }

// TxBurst implements PortBackend: every frame is accepted and discarded.
func (b *NullBackend) TxBurst(q int, frames [][]byte) int {
	if len(frames) > 0 {
		b.txPackets.Add(uint64(len(frames)))
	}
	return len(frames)
}

// TransmitSlow implements SlowPathTransmitter (counted and discarded).
func (b *NullBackend) TransmitSlow(frame []byte) bool {
	b.txPackets.Add(1)
	return true
}

// Stats implements PortBackend.
func (b *NullBackend) Stats() PortStats {
	return PortStats{TxPackets: b.txPackets.Load()}
}

// QueueError implements PortBackend: a sink never fails.
func (b *NullBackend) QueueError(q int) error { return nil }

// Close implements PortBackend.
func (b *NullBackend) Close() error { return nil }
