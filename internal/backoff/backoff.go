// Package backoff is the repository's one deterministic retry-delay
// generator: capped exponential backoff with seeded multiplicative jitter.
//
// Two supervision planes share it — the controller-channel supervisor
// (internal/controller) redialing a dead OpenFlow session, and the port
// supervisor (internal/dpdk) reopening a dead packet I/O backend.  Both
// record every delay they sleep, and their chaos tests compare the recorded
// sequence against Schedule, the pure oracle that replays the same config.
// Keeping the generator in one package is what makes that oracle honest:
// there is exactly one formula, min(Max, Min·2^attempt) scaled by
// 1+U[0,JitterFrac) from a seeded math/rand stream, and everyone uses it.
package backoff

import (
	"math/rand"
	"time"
)

// Config parameterizes a backoff sequence.  The zero value is not useful;
// callers apply their own defaults before constructing a Source (the two
// supervisors deliberately share defaults: 50ms..5s, jitter 0.25).
type Config struct {
	// Min and Max bound the capped exponential base delay: attempt i's base
	// is min(Max, Min·2^i).
	Min time.Duration
	Max time.Duration
	// JitterFrac is the multiplicative jitter spread: each base delay is
	// scaled by 1+U[0,JitterFrac) drawn from the seeded generator.
	JitterFrac float64
	// Seed makes the jitter stream deterministic, so Schedule can reproduce
	// every delay a Source will ever hand out.
	Seed int64
}

// Source is a stateful delay generator: Next returns the current attempt's
// delay and advances the attempt counter; Reset rewinds the attempt counter
// to zero (a success happened) while the jitter stream keeps advancing —
// a flap after a healthy period restarts the schedule at Min but never
// replays jitter values.
type Source struct {
	cfg     Config
	rng     *rand.Rand
	attempt int
}

// NewSource returns a generator at attempt zero.
func NewSource(cfg Config) *Source {
	return &Source{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Next returns the delay for the current attempt and advances to the next.
func (s *Source) Next() time.Duration {
	d := jitter(base(s.cfg, s.attempt), s.cfg.JitterFrac, s.rng)
	s.attempt++
	return d
}

// Reset rewinds the attempt counter after a success; the jitter stream is
// not rewound.
func (s *Source) Reset() { s.attempt = 0 }

// Attempt returns the zero-based attempt index Next will compute next.
func (s *Source) Attempt() int { return s.attempt }

// Schedule is the oracle: the first n delays a fresh Source with this
// config produces over consecutive failures (no intervening Reset).
func Schedule(cfg Config, n int) []time.Duration {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = jitter(base(cfg, i), cfg.JitterFrac, rng)
	}
	return out
}

func base(cfg Config, attempt int) time.Duration {
	d := cfg.Min
	for i := 0; i < attempt && d < cfg.Max; i++ {
		d *= 2
	}
	if d > cfg.Max {
		d = cfg.Max
	}
	return d
}

func jitter(d time.Duration, frac float64, rng *rand.Rand) time.Duration {
	return time.Duration(float64(d) * (1 + frac*rng.Float64()))
}
