package backoff

import (
	"testing"
	"time"
)

func testConfig() Config {
	return Config{Min: 50 * time.Millisecond, Max: 5 * time.Second, JitterFrac: 0.25, Seed: 42}
}

// The schedule doubles from Min, saturates at Max (before jitter), and every
// delay carries jitter in [1, 1+JitterFrac) of its base.
func TestScheduleShape(t *testing.T) {
	cfg := testConfig()
	sched := Schedule(cfg, 12)
	base := cfg.Min
	for i, d := range sched {
		lo, hi := base, time.Duration(float64(base)*(1+cfg.JitterFrac))
		if d < lo || d >= hi {
			t.Fatalf("delay %d = %v outside [%v, %v)", i, d, lo, hi)
		}
		if base < cfg.Max {
			base *= 2
			if base > cfg.Max {
				base = cfg.Max
			}
		}
	}
	if got := sched[len(sched)-1]; got < cfg.Max {
		t.Fatalf("tail delay %v below saturated max %v", got, cfg.Max)
	}
}

// A Source replays Schedule exactly, and is deterministic across instances.
func TestSourceMatchesSchedule(t *testing.T) {
	cfg := testConfig()
	src := NewSource(cfg)
	want := Schedule(cfg, 8)
	for i, w := range want {
		if got := src.Next(); got != w {
			t.Fatalf("Next()[%d] = %v, Schedule = %v", i, got, w)
		}
	}
}

// Reset rewinds the attempt (delays restart near Min) but not the jitter
// stream (the restarted delays are not a byte-for-byte replay).
func TestResetRewindsAttemptNotJitter(t *testing.T) {
	cfg := testConfig()
	src := NewSource(cfg)
	first := src.Next()
	for i := 0; i < 3; i++ {
		src.Next()
	}
	src.Reset()
	if src.Attempt() != 0 {
		t.Fatalf("Attempt after Reset = %d", src.Attempt())
	}
	again := src.Next()
	hi := time.Duration(float64(cfg.Min) * (1 + cfg.JitterFrac))
	if again < cfg.Min || again >= hi {
		t.Fatalf("post-Reset delay %v outside first-attempt band [%v, %v)", again, cfg.Min, hi)
	}
	if again == first {
		t.Fatalf("post-Reset delay replayed the jitter stream (%v)", again)
	}
}
