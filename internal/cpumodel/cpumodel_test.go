package cpumodel

import (
	"testing"
	"testing/quick"
)

func TestDefaultPlatformMatchesTable1(t *testing.T) {
	p := DefaultPlatform()
	if p.L1Size != 32<<10 || p.L2Size != 256<<10 || p.L3Size != 15<<20 {
		t.Fatalf("cache sizes: %d %d %d", p.L1Size, p.L2Size, p.L3Size)
	}
	if p.L1Lat != 4 || p.L2Lat != 12 || p.L3Lat != 29 {
		t.Fatalf("cache latencies: %d %d %d", p.L1Lat, p.L2Lat, p.L3Lat)
	}
	if p.FreqGHz != 2.0 {
		t.Fatalf("frequency %v", p.FreqGHz)
	}
}

func TestCacheLevelString(t *testing.T) {
	for l, want := range map[CacheLevel]string{LevelL1: "L1", LevelL2: "L2", LevelL3: "L3", LevelMemory: "memory"} {
		if l.String() != want {
			t.Errorf("%d -> %q want %q", l, l.String(), want)
		}
	}
}

func TestHierarchySmallWorkingSetStaysInL1(t *testing.T) {
	h := NewHierarchy(DefaultPlatform())
	// Touch 4 KiB repeatedly: after the cold pass everything is an L1 hit.
	for pass := 0; pass < 3; pass++ {
		for addr := uint64(0); addr < 4096; addr += 64 {
			h.Access(addr)
		}
	}
	// Final pass must be all L1 hits.
	for addr := uint64(0); addr < 4096; addr += 64 {
		if level, lat := h.Access(addr); level != LevelL1 || lat != 4 {
			t.Fatalf("addr %d served from %v (%d cycles)", addr, level, lat)
		}
	}
	st := h.Stats()
	if st.LLCMisses != 64 {
		t.Fatalf("cold LLC misses: %d, want one per line (64)", st.LLCMisses)
	}
}

func TestHierarchyLargeWorkingSetMissesLLC(t *testing.T) {
	h := NewHierarchy(DefaultPlatform())
	// A 64 MiB working set cannot fit the 15 MiB L3: a second sweep still
	// misses the LLC for most lines.
	const size = 64 << 20
	for addr := uint64(0); addr < size; addr += 64 {
		h.Access(addr)
	}
	before := h.Stats().LLCMisses
	for addr := uint64(0); addr < size; addr += 64 {
		h.Access(addr)
	}
	extra := h.Stats().LLCMisses - before
	if extra < (size/64)/2 {
		t.Fatalf("second sweep of an over-LLC working set produced only %d LLC misses", extra)
	}
}

func TestHierarchyL2Window(t *testing.T) {
	h := NewHierarchy(DefaultPlatform())
	// 128 KiB fits L2 but not L1: steady state should serve mostly from L2.
	const size = 128 << 10
	for pass := 0; pass < 4; pass++ {
		for addr := uint64(0); addr < size; addr += 64 {
			h.Access(addr)
		}
	}
	l1, l2 := 0, 0
	for addr := uint64(0); addr < size; addr += 64 {
		level, _ := h.Access(addr)
		switch level {
		case LevelL1:
			l1++
		case LevelL2:
			l2++
		}
	}
	if l2 == 0 || l2 < l1 {
		t.Fatalf("expected the majority of hits from L2, got L1=%d L2=%d", l1, l2)
	}
}

func TestMeterNilIsSafe(t *testing.T) {
	var m *Meter
	m.StartPacket()
	m.AddCycles(10)
	r := m.NewRegion("x", 100)
	m.RegionAccess(r, 0)
	if m.CyclesPerPacket() != 0 || m.PacketRate() != 0 || m.Packets() != 0 {
		t.Fatal("nil meter must report zeros")
	}
	if m.String() != "meter{nil}" {
		t.Fatalf("nil meter string %q", m.String())
	}
}

func TestMeterAccounting(t *testing.T) {
	m := NewMeterNoCache(DefaultPlatform())
	r := m.NewRegion("table", 1024)
	for i := 0; i < 10; i++ {
		m.StartPacket()
		m.AddCycles(100)
		m.RegionAccess(r, uint64(i*64))
	}
	if m.Packets() != 10 {
		t.Fatalf("packets %d", m.Packets())
	}
	wantCPP := 104.0 // 100 fixed + L1 latency of 4
	if got := m.CyclesPerPacket(); got != wantCPP {
		t.Fatalf("cycles/packet %v want %v", got, wantCPP)
	}
	wantRate := 2.0e9 / wantCPP
	if got := m.PacketRate(); got < wantRate*0.999 || got > wantRate*1.001 {
		t.Fatalf("rate %v want %v", got, wantRate)
	}
	if m.LatencyMicros() <= 0 {
		t.Fatal("latency must be positive")
	}
	if m.PacketCycles() != 104 {
		t.Fatalf("per-packet cycles %d", m.PacketCycles())
	}
	m.Reset()
	if m.Packets() != 0 || m.TotalCycles() != 0 {
		t.Fatal("reset failed")
	}
}

func TestMeterRegionsDoNotOverlap(t *testing.T) {
	m := NewMeter(DefaultPlatform())
	a := m.NewRegion("a", 4096)
	b := m.NewRegion("b", 4096)
	if a.Addr(0) == b.Addr(0) {
		t.Fatal("regions overlap")
	}
	if a.Addr(4096) != a.Addr(0) {
		t.Fatal("region offset must wrap modulo size")
	}
	if a.Name() != "a" || b.Size() != 4096 {
		t.Fatal("region metadata broken")
	}
}

func TestMeterCacheGrowthIncreasesMisses(t *testing.T) {
	// The same number of accesses spread over a larger working set must
	// produce at least as many LLC misses — the effect behind Fig. 15.
	missesFor := func(workingSet int) float64 {
		m := NewMeter(DefaultPlatform())
		r := m.NewRegion("flows", workingSet)
		const packets = 20000
		for i := 0; i < packets; i++ {
			m.StartPacket()
			// Each packet touches a flow-dependent line.
			m.RegionAccess(r, uint64(i*64))
		}
		return m.LLCMissesPerPacket()
	}
	small := missesFor(256 << 10) // fits L3 easily
	large := missesFor(256 << 20) // far larger than L3
	if small > large {
		t.Fatalf("small working set misses %v > large %v", small, large)
	}
	if large < 0.5 {
		t.Fatalf("large working set should miss the LLC on most packets, got %v", large)
	}
}

func TestAtomPlatform(t *testing.T) {
	p := AtomPlatform()
	if p.FreqGHz != 2.4 || p.L3Size != 0 {
		t.Fatalf("atom platform %+v", p)
	}
	h := NewHierarchy(p)
	level, lat := h.Access(0)
	if level != LevelMemory || lat != p.MemLat {
		t.Fatalf("cold access on no-L3 platform: %v %d", level, lat)
	}
	if _, lat := h.Access(0); lat != p.L1Lat {
		t.Fatalf("warm access should hit L1, got %d", lat)
	}
}

func TestCacheAccessDeterministicProperty(t *testing.T) {
	f := func(addrs []uint64) bool {
		h1 := NewHierarchy(DefaultPlatform())
		h2 := NewHierarchy(DefaultPlatform())
		for _, a := range addrs {
			l1, c1 := h1.Access(a)
			l2, c2 := h2.Access(a)
			if l1 != l2 || c1 != c2 {
				return false
			}
		}
		return h1.Stats() == h2.Stats()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h := NewHierarchy(DefaultPlatform())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i) * 64)
	}
}

func TestMeterShardsFoldAndRelease(t *testing.T) {
	m := NewMeter(DefaultPlatform())
	r := m.NewRegion("flows", 4096)
	a, b := m.NewShard(), m.NewShard()
	if m.NumShards() != 2 {
		t.Fatalf("shards %d", m.NumShards())
	}
	// Charge different amounts to each shard and some to the parent.
	for i := 0; i < 5; i++ {
		a.StartPacket()
		a.AddCycles(100)
		a.RegionAccess(r, uint64(i)*64)
	}
	for i := 0; i < 3; i++ {
		b.StartPacket()
		b.AddCycles(50)
	}
	m.StartPacket()
	m.AddCycles(10)
	if got := m.Packets(); got != 9 {
		t.Fatalf("folded packets %d, want 9", got)
	}
	// Shards read only their own counters.
	if a.Packets() != 5 || b.Packets() != 3 {
		t.Fatalf("shard packets %d/%d", a.Packets(), b.Packets())
	}
	wantCycles := m.TotalCycles()
	// Releasing a shard folds it into the base: totals must not move.
	m.ReleaseShard(a)
	if m.NumShards() != 1 {
		t.Fatalf("shards after release %d", m.NumShards())
	}
	if got := m.TotalCycles(); got != wantCycles {
		t.Fatalf("release changed folded cycles %d -> %d", wantCycles, got)
	}
	if got := m.Packets(); got != 9 {
		t.Fatalf("release changed folded packets: %d", got)
	}
	// Reset clears the parent, the base and the remaining shards.
	m.Reset()
	if m.Packets() != 0 || m.TotalCycles() != 0 || b.Packets() != 0 {
		t.Fatalf("reset left counts: %d %d %d", m.Packets(), m.TotalCycles(), b.Packets())
	}
	// Shards of shards delegate to the root.
	c := b.NewShard()
	c.StartPacket()
	if m.Packets() != 1 || m.NumShards() != 2 {
		t.Fatalf("shard-of-shard did not land on the root: %d packets, %d shards", m.Packets(), m.NumShards())
	}
}

func TestMeterShardLLCFolds(t *testing.T) {
	m := NewMeter(DefaultPlatform())
	// A region far larger than the LLC: every strided access misses.
	r := m.NewRegion("huge", 64<<20)
	s := m.NewShard()
	const n = 5000
	s.StartPackets(n)
	for i := 0; i < n; i++ {
		s.RegionAccess(r, uint64(i)*4096)
	}
	if got := m.LLCMissesPerPacket(); got < 0.9 {
		t.Fatalf("folded LLC misses/packet %v, want ~1 (shard hierarchy is private)", got)
	}
	// The parent's own hierarchy saw none of these accesses.
	if own := m.Cache.Stats().Accesses; own != 0 {
		t.Fatalf("parent hierarchy saw %d accesses", own)
	}
}

func TestMeterShardRegistryOpsFlatOnHotPath(t *testing.T) {
	m := NewMeter(DefaultPlatform())
	r := m.NewRegion("t", 4096)
	s := m.NewShard()
	ops := m.RegistryOps()
	for i := 0; i < 1000; i++ {
		s.StartPacket()
		s.AddCycles(7)
		s.RegionAccess(r, uint64(i)*64)
	}
	if got := m.RegistryOps(); got != ops {
		t.Fatalf("metering touched the shard registry %d times", got-ops)
	}
}

func TestNilMeterShardIsSafe(t *testing.T) {
	var m *Meter
	if m.NewShard() != nil {
		t.Fatal("nil meter must shard to nil")
	}
	m.ReleaseShard(nil)
	if m.NumShards() != 0 || m.RegistryOps() != 0 {
		t.Fatal("nil meter registry must be empty")
	}
}
