// Package cpumodel provides the deterministic CPU cost model used to
// reproduce the paper's cycle- and cache-level measurements (Figs. 9, 15, 16,
// 20) without the original hardware: a description of the measurement
// platform (Table 1), a set-associative L1/L2/L3 cache-hierarchy simulator,
// and a per-packet cycle meter the datapaths report their work to.
//
// The model is intentionally coarse — exactly as coarse as the paper's own
// performance model (§4.4): per-template fixed cycle costs plus per-memory-
// access variable costs whose latency depends on which simulated cache level
// the access hits.
package cpumodel

// Platform describes the modelled machine.  The defaults reproduce Table 1 of
// the paper (Intel Xeon E5-2620, Sandy Bridge, 2 GHz).
type Platform struct {
	Name     string
	FreqGHz  float64
	LineSize int

	L1Size, L2Size, L3Size    int
	L1Assoc, L2Assoc, L3Assoc int
	// Latencies in CPU cycles for a hit in each level and for DRAM.
	L1Lat, L2Lat, L3Lat, MemLat int
}

// DefaultPlatform returns the paper's system-under-test (Table 1).
func DefaultPlatform() Platform {
	return Platform{
		Name:     "Intel Xeon E5-2620 @ 2.00GHz (Sandy Bridge)",
		FreqGHz:  2.0,
		LineSize: 64,
		L1Size:   32 << 10,
		L2Size:   256 << 10,
		L3Size:   15 << 20,
		L1Assoc:  8,
		L2Assoc:  8,
		L3Assoc:  20,
		L1Lat:    4,
		L2Lat:    12,
		L3Lat:    29,
		MemLat:   150,
	}
}

// AtomPlatform returns the slower Atom platform used for the multi-core
// scalability experiment (Fig. 19), where the paper had to move off the Xeon
// to keep forwarding CPU-bound rather than NIC-bound.
func AtomPlatform() Platform {
	p := DefaultPlatform()
	p.Name = "Intel Atom @ 2.40GHz"
	p.FreqGHz = 2.4
	p.L2Size = 1 << 20
	p.L3Size = 0 // no L3; treat L3 parameters as memory
	p.L1Lat, p.L2Lat, p.L3Lat, p.MemLat = 3, 15, 60, 180
	return p
}

// Cost atoms (CPU cycles) for the fixed part of each pipeline stage, from the
// paper's Fig. 20 and §4.4 static code analysis.
const (
	// CostPktIO is one DPDK packet receive or transmit (≈40–50 cycles).
	CostPktIO = 40
	// CostParser is the combined header parser template.
	CostParser = 28
	// CostHashFixed is the fixed part of a compound-hash lookup (8 + Lx).
	CostHashFixed = 8
	// CostLPMFixed is the fixed part of a DIR-24-8 lookup (13 + 2·Lx).
	CostLPMFixed = 13
	// CostActions is action-set processing.
	CostActions = 25
	// CostDirectPerEntry is the cost of evaluating one direct-code flow
	// entry's matchers (measured calibration, Fig. 9: the direct template
	// grows linearly and crosses the hash template at ≈4 entries).
	CostDirectPerEntry = 3
	// CostDirectFixed is the fixed overhead of entering a direct-code
	// table.
	CostDirectFixed = 2
	// CostTSSPerGroup is the cost of probing one tuple (mask group) of the
	// linked-list template, excluding the memory access (key construction,
	// masking and hashing per probed tuple).
	CostTSSPerGroup = 25
	// CostUpcall is the cost of punting a packet from the cache hierarchy
	// to the OVS userspace slow path and back (encapsulation, queueing,
	// flow translation) — the dominant term of a megaflow miss.
	CostUpcall = 1200
	// CostMicroflowFixed is the fixed cost of an OVS microflow-cache probe.
	CostMicroflowFixed = 10
	// CostMegaflowPerGroup is the fixed cost of probing one megaflow tuple.
	CostMegaflowPerGroup = 15
	// CostSlowPathPerEntry is the per-flow-entry cost of the vswitchd
	// linear/tuple classification on the slow path.
	CostSlowPathPerEntry = 12
)
