package cpumodel

import (
	"fmt"
	"sync/atomic"

	"eswitch/internal/lockcount"
)

// Region is a slice of the simulated address space standing in for one data
// structure (a hash table, an LPM level, a cache of flow entries, a packet
// buffer pool, ...).  Datapaths translate their logical accesses ("probe
// bucket h of this table") into addresses inside their regions, so the
// cache-hierarchy simulator sees a working set whose size and reuse pattern
// track the real structures.
type Region struct {
	base uint64
	size uint64
	name string
}

// Name returns the region's name.
func (r *Region) Name() string { return r.name }

// Size returns the region's size in bytes.
func (r *Region) Size() uint64 { return r.size }

// Addr maps a logical offset into the region to a simulated address,
// wrapping modulo the region size.
func (r *Region) Addr(offset uint64) uint64 {
	if r.size == 0 {
		return r.base
	}
	return r.base + offset%r.size
}

// meterTotals is one fold of the additive counters.
type meterTotals struct {
	packets   uint64
	cycles    uint64
	llcMisses uint64
}

// Meter accumulates per-packet cycle costs for one datapath instance.  A nil
// *Meter is valid everywhere and makes all accounting free, so the hot paths
// can keep a single code path.
//
// # Sharding (multi-worker metering)
//
// A Meter's accounting methods are single-writer: exactly one goroutine may
// charge costs to a given Meter at a time.  Multi-worker dataplanes instead
// give every forwarding worker its own shard — NewShard returns a
// cache-line-padded child Meter with a private cache hierarchy (each worker
// core has private L1/L2/L3 in this model) whose counters only that worker
// writes.  The parent folds the shards on every read (Packets, TotalCycles,
// CyclesPerPacket, PacketRate, LLCMissesPerPacket, String), so a metered
// multi-worker run is race-free without any lock or atomic read-modify-write
// on the packet path: shard counters are written with single-writer
// atomic.Store and read with atomic.Load.  ReleaseShard folds a retired
// worker's totals into the parent so folded reads stay monotonic.
//
// Reset and PacketCycles remain quiescent-only: call them when no worker is
// actively metering.
type Meter struct {
	Platform Platform
	// Cache, when non-nil, is consulted for every RegionAccess to decide
	// the access latency; when nil, accesses cost the optimistic L1
	// latency.
	Cache *Hierarchy

	// Additive counters.  Written only by the owning worker (plain
	// load-then-store, never read-modify-write), loaded by fold readers.
	packets   atomic.Uint64
	cycles    atomic.Uint64
	llcMisses atomic.Uint64 // accesses served past the last cache level
	pktCycles uint64        // cycles of the packet currently being metered (owner-only)

	nextBase uint64

	// Shard registry (root meters only).  shardMu is a counted mutex so
	// the zero-lock acceptance tests can assert steady-state forwarding
	// never touches it (shards register once, at worker start).
	shardMu lockcount.Mutex
	shards  []*Meter
	retired meterTotals
	root    *Meter // non-nil on shards

	// Trailing padding keeps a shard's hot counters off the next shard's
	// cache line (shards are allocated back to back by busy registrars).
	_ [64]byte
}

// storeAdd bumps a single-writer counter without an atomic read-modify-write:
// the owning worker is the only writer, so load-then-store is exact, and the
// atomic store is what makes concurrent fold reads race-free.
func storeAdd(c *atomic.Uint64, n uint64) { c.Store(c.Load() + n) }

// NewMeter returns a meter with a fresh cache hierarchy on the platform.
func NewMeter(p Platform) *Meter {
	return &Meter{Platform: p, Cache: NewHierarchy(p), nextBase: 1 << 20}
}

// NewMeterNoCache returns a meter that charges the optimistic L1 latency for
// every access (the paper's model-ub assumption).
func NewMeterNoCache(p Platform) *Meter {
	return &Meter{Platform: p, nextBase: 1 << 20}
}

// NewShard registers and returns a per-worker shard of this meter: a child
// Meter with private counters (and a private cache hierarchy when the parent
// simulates one) that exactly one worker goroutine may write.  The parent's
// read accessors fold all shards in.  Shards of shards are not allowed; a
// shard's NewShard delegates to the root.
func (m *Meter) NewShard() *Meter {
	if m == nil {
		return nil
	}
	if m.root != nil {
		return m.root.NewShard()
	}
	s := &Meter{Platform: m.Platform, root: m}
	if m.Cache != nil {
		s.Cache = NewHierarchy(m.Platform)
	}
	m.shardMu.Lock()
	m.shards = append(m.shards, s)
	m.shardMu.Unlock()
	return s
}

// ReleaseShard folds a retired worker's shard into the meter's base totals
// and drops it from the registry, keeping folded reads monotonic while the
// registry stays bounded by the number of live workers.  The shard must be
// quiescent (its worker stopped).
func (m *Meter) ReleaseShard(s *Meter) {
	if m == nil || s == nil {
		return
	}
	if m.root != nil {
		m.root.ReleaseShard(s)
		return
	}
	m.shardMu.Lock()
	kept := m.shards[:0]
	found := false
	for _, o := range m.shards {
		if o == s {
			found = true
			continue
		}
		kept = append(kept, o)
	}
	m.shards = kept
	if found {
		m.retired.packets += s.packets.Load()
		m.retired.cycles += s.cycles.Load()
		m.retired.llcMisses += s.llcMisses.Load()
	}
	m.shardMu.Unlock()
}

// NumShards returns how many worker shards are currently registered.
func (m *Meter) NumShards() int {
	if m == nil {
		return 0
	}
	m.shardMu.Lock()
	defer m.shardMu.Unlock()
	return len(m.shards)
}

// RegistryOps returns how many times the shard-registry mutex has been
// acquired; the zero-lock acceptance tests assert it stays flat across
// steady-state forwarding (shards register once per worker, never per burst).
func (m *Meter) RegistryOps() uint64 {
	if m == nil {
		return 0
	}
	return m.shardMu.Ops()
}

// fold sums the meter's own counters, the retired base and all live shards.
func (m *Meter) fold() meterTotals {
	t := meterTotals{
		packets:   m.packets.Load(),
		cycles:    m.cycles.Load(),
		llcMisses: m.llcMisses.Load(),
	}
	m.shardMu.Lock()
	t.packets += m.retired.packets
	t.cycles += m.retired.cycles
	t.llcMisses += m.retired.llcMisses
	for _, s := range m.shards {
		t.packets += s.packets.Load()
		t.cycles += s.cycles.Load()
		t.llcMisses += s.llcMisses.Load()
	}
	m.shardMu.Unlock()
	return t
}

// NewRegion carves a new region of the given size out of the simulated
// address space.  Regions never overlap; shards delegate to the root so one
// address space serves the whole meter family.
func (m *Meter) NewRegion(name string, size int) *Region {
	if m == nil {
		return &Region{name: name, size: uint64(size)}
	}
	if m.root != nil {
		return m.root.NewRegion(name, size)
	}
	if size < 64 {
		size = 64
	}
	m.shardMu.Lock()
	r := &Region{base: m.nextBase, size: uint64(size), name: name}
	// Leave a guard gap and keep regions line-aligned.
	m.nextBase += (uint64(size) + 4096) &^ 63
	m.shardMu.Unlock()
	return r
}

// StartPacket marks the beginning of one packet's processing.
func (m *Meter) StartPacket() {
	if m == nil {
		return
	}
	storeAdd(&m.packets, 1)
	m.pktCycles = 0
}

// StartPackets marks the beginning of a burst of n packets.  Burst-mode
// datapaths charge costs for the whole burst at once, so the per-packet
// cycle attribution of PacketCycles is not meaningful in this mode; the
// aggregate counters (TotalCycles, CyclesPerPacket) remain exact.
func (m *Meter) StartPackets(n int) {
	if m == nil {
		return
	}
	storeAdd(&m.packets, uint64(n))
	m.pktCycles = 0
}

// AddCycles charges fixed cycles to the current packet.
func (m *Meter) AddCycles(n int) {
	if m == nil {
		return
	}
	storeAdd(&m.cycles, uint64(n))
	m.pktCycles += uint64(n)
}

// RegionAccess charges one memory access at the given logical offset within
// the region, returning the latency charged.
func (m *Meter) RegionAccess(r *Region, offset uint64) int {
	if m == nil {
		return 0
	}
	lat := m.Platform.L1Lat
	if m.Cache != nil {
		var level CacheLevel
		level, lat = m.Cache.Access(r.Addr(offset))
		if level == LevelMemory {
			storeAdd(&m.llcMisses, 1)
		}
	}
	storeAdd(&m.cycles, uint64(lat))
	m.pktCycles += uint64(lat)
	return lat
}

// PacketCycles returns the cycles charged to the packet currently being
// metered (between StartPacket calls).
func (m *Meter) PacketCycles() uint64 {
	if m == nil {
		return 0
	}
	return m.pktCycles
}

// Packets returns the number of packets metered so far, folded over all
// worker shards.
func (m *Meter) Packets() uint64 {
	if m == nil {
		return 0
	}
	return m.fold().packets
}

// TotalCycles returns all cycles charged so far, folded over all shards.
func (m *Meter) TotalCycles() uint64 {
	if m == nil {
		return 0
	}
	return m.fold().cycles
}

// CyclesPerPacket returns the mean cycles per packet over all shards.
func (m *Meter) CyclesPerPacket() float64 {
	if m == nil {
		return 0
	}
	t := m.fold()
	if t.packets == 0 {
		return 0
	}
	return float64(t.cycles) / float64(t.packets)
}

// PacketRate returns the modelled single-core packet rate in packets per
// second at the platform frequency.
func (m *Meter) PacketRate() float64 {
	cpp := m.CyclesPerPacket()
	if cpp == 0 {
		return 0
	}
	return m.Platform.FreqGHz * 1e9 / cpp
}

// LatencyMicros returns the modelled per-packet latency in microseconds.
func (m *Meter) LatencyMicros() float64 {
	cpp := m.CyclesPerPacket()
	if cpp == 0 {
		return 0
	}
	return cpp / (m.Platform.FreqGHz * 1e3)
}

// LLCMissesPerPacket returns the simulated last-level-cache misses per
// packet, folded over all shards (each worker shard simulates its own
// private hierarchy).
func (m *Meter) LLCMissesPerPacket() float64 {
	if m == nil {
		return 0
	}
	t := m.fold()
	if t.packets == 0 {
		return 0
	}
	return float64(t.llcMisses) / float64(t.packets)
}

// Reset clears all counters (and the cache hierarchy contents) of the meter
// and all its shards.  Quiescent-only: no worker may be metering while Reset
// runs.
func (m *Meter) Reset() {
	if m == nil {
		return
	}
	m.packets.Store(0)
	m.cycles.Store(0)
	m.llcMisses.Store(0)
	m.pktCycles = 0
	if m.Cache != nil {
		m.Cache.Reset()
	}
	if m.root == nil {
		m.shardMu.Lock()
		m.retired = meterTotals{}
		shards := append([]*Meter(nil), m.shards...)
		m.shardMu.Unlock()
		for _, s := range shards {
			s.Reset()
		}
	}
}

// String summarizes the meter (folded over all shards).
func (m *Meter) String() string {
	if m == nil {
		return "meter{nil}"
	}
	t := m.fold()
	cpp, llc := 0.0, 0.0
	if t.packets > 0 {
		cpp = float64(t.cycles) / float64(t.packets)
		llc = float64(t.llcMisses) / float64(t.packets)
	}
	rate := 0.0
	if cpp > 0 {
		rate = m.Platform.FreqGHz * 1e9 / cpp
	}
	return fmt.Sprintf("meter{packets=%d cycles/pkt=%.1f rate=%.2f Mpps llc/pkt=%.3f shards=%d}",
		t.packets, cpp, rate/1e6, llc, m.NumShards())
}
