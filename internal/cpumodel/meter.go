package cpumodel

import "fmt"

// Region is a slice of the simulated address space standing in for one data
// structure (a hash table, an LPM level, a cache of flow entries, a packet
// buffer pool, ...).  Datapaths translate their logical accesses ("probe
// bucket h of this table") into addresses inside their regions, so the
// cache-hierarchy simulator sees a working set whose size and reuse pattern
// track the real structures.
type Region struct {
	base uint64
	size uint64
	name string
}

// Name returns the region's name.
func (r *Region) Name() string { return r.name }

// Size returns the region's size in bytes.
func (r *Region) Size() uint64 { return r.size }

// Addr maps a logical offset into the region to a simulated address,
// wrapping modulo the region size.
func (r *Region) Addr(offset uint64) uint64 {
	if r.size == 0 {
		return r.base
	}
	return r.base + offset%r.size
}

// Meter accumulates per-packet cycle costs for one datapath instance.  A nil
// *Meter is valid everywhere and makes all accounting free, so the hot paths
// can keep a single code path.
type Meter struct {
	Platform Platform
	// Cache, when non-nil, is consulted for every RegionAccess to decide
	// the access latency; when nil, accesses cost the optimistic L1
	// latency.
	Cache *Hierarchy

	packets   uint64
	cycles    uint64
	nextBase  uint64
	pktCycles uint64 // cycles of the packet currently being metered
}

// NewMeter returns a meter with a fresh cache hierarchy on the platform.
func NewMeter(p Platform) *Meter {
	return &Meter{Platform: p, Cache: NewHierarchy(p), nextBase: 1 << 20}
}

// NewMeterNoCache returns a meter that charges the optimistic L1 latency for
// every access (the paper's model-ub assumption).
func NewMeterNoCache(p Platform) *Meter {
	return &Meter{Platform: p, nextBase: 1 << 20}
}

// NewRegion carves a new region of the given size out of the simulated
// address space.  Regions never overlap.
func (m *Meter) NewRegion(name string, size int) *Region {
	if m == nil {
		return &Region{name: name, size: uint64(size)}
	}
	if size < 64 {
		size = 64
	}
	r := &Region{base: m.nextBase, size: uint64(size), name: name}
	// Leave a guard gap and keep regions line-aligned.
	m.nextBase += (uint64(size) + 4096) &^ 63
	return r
}

// StartPacket marks the beginning of one packet's processing.
func (m *Meter) StartPacket() {
	if m == nil {
		return
	}
	m.packets++
	m.pktCycles = 0
}

// StartPackets marks the beginning of a burst of n packets.  Burst-mode
// datapaths charge costs for the whole burst at once, so the per-packet
// cycle attribution of PacketCycles is not meaningful in this mode; the
// aggregate counters (TotalCycles, CyclesPerPacket) remain exact.
func (m *Meter) StartPackets(n int) {
	if m == nil {
		return
	}
	m.packets += uint64(n)
	m.pktCycles = 0
}

// AddCycles charges fixed cycles to the current packet.
func (m *Meter) AddCycles(n int) {
	if m == nil {
		return
	}
	m.cycles += uint64(n)
	m.pktCycles += uint64(n)
}

// RegionAccess charges one memory access at the given logical offset within
// the region, returning the latency charged.
func (m *Meter) RegionAccess(r *Region, offset uint64) int {
	if m == nil {
		return 0
	}
	lat := m.Platform.L1Lat
	if m.Cache != nil {
		_, lat = m.Cache.Access(r.Addr(offset))
	}
	m.cycles += uint64(lat)
	m.pktCycles += uint64(lat)
	return lat
}

// PacketCycles returns the cycles charged to the packet currently being
// metered (between StartPacket calls).
func (m *Meter) PacketCycles() uint64 {
	if m == nil {
		return 0
	}
	return m.pktCycles
}

// Packets returns the number of packets metered so far.
func (m *Meter) Packets() uint64 {
	if m == nil {
		return 0
	}
	return m.packets
}

// TotalCycles returns all cycles charged so far.
func (m *Meter) TotalCycles() uint64 {
	if m == nil {
		return 0
	}
	return m.cycles
}

// CyclesPerPacket returns the mean cycles per packet.
func (m *Meter) CyclesPerPacket() float64 {
	if m == nil || m.packets == 0 {
		return 0
	}
	return float64(m.cycles) / float64(m.packets)
}

// PacketRate returns the modelled single-core packet rate in packets per
// second at the platform frequency.
func (m *Meter) PacketRate() float64 {
	cpp := m.CyclesPerPacket()
	if cpp == 0 {
		return 0
	}
	return m.Platform.FreqGHz * 1e9 / cpp
}

// LatencyMicros returns the modelled per-packet latency in microseconds.
func (m *Meter) LatencyMicros() float64 {
	cpp := m.CyclesPerPacket()
	if cpp == 0 {
		return 0
	}
	return cpp / (m.Platform.FreqGHz * 1e3)
}

// LLCMissesPerPacket returns the simulated last-level-cache misses per packet.
func (m *Meter) LLCMissesPerPacket() float64 {
	if m == nil || m.Cache == nil || m.packets == 0 {
		return 0
	}
	return float64(m.Cache.Stats().LLCMisses) / float64(m.packets)
}

// Reset clears all counters (and the cache hierarchy contents).
func (m *Meter) Reset() {
	if m == nil {
		return
	}
	m.packets, m.cycles, m.pktCycles = 0, 0, 0
	if m.Cache != nil {
		m.Cache.Reset()
	}
}

// String summarizes the meter.
func (m *Meter) String() string {
	if m == nil {
		return "meter{nil}"
	}
	return fmt.Sprintf("meter{packets=%d cycles/pkt=%.1f rate=%.2f Mpps llc/pkt=%.3f}",
		m.packets, m.CyclesPerPacket(), m.PacketRate()/1e6, m.LLCMissesPerPacket())
}
