package cpumodel

// CacheLevel identifies where a simulated memory access was served from.
type CacheLevel int

// Cache levels.
const (
	LevelL1 CacheLevel = iota + 1
	LevelL2
	LevelL3
	LevelMemory
)

// String names the level.
func (l CacheLevel) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	default:
		return "memory"
	}
}

// cache is one set-associative LRU cache level.
type cache struct {
	sets  []cacheSet
	assoc int
	shift uint // log2(line size)
	nsets uint64
	// counters
	accesses uint64
	misses   uint64
}

type cacheSet struct {
	// tags in LRU order, most recently used first.
	tags []uint64
}

func newCache(size, assoc, lineSize int) *cache {
	if size <= 0 {
		return nil
	}
	lines := size / lineSize
	sets := lines / assoc
	if sets < 1 {
		sets = 1
	}
	// Round the set count down to a power of two for cheap indexing.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	c := &cache{sets: make([]cacheSet, p), assoc: assoc, nsets: uint64(p)}
	for lineSize > 1 {
		lineSize >>= 1
		c.shift++
	}
	return c
}

// access looks up the line containing addr, returning true on a hit, and
// updates LRU/fill state either way.
func (c *cache) access(addr uint64) bool {
	c.accesses++
	tag := addr >> c.shift
	set := &c.sets[tag&(c.nsets-1)]
	for i, t := range set.tags {
		if t == tag {
			// Move to front (most recently used).
			copy(set.tags[1:i+1], set.tags[:i])
			set.tags[0] = tag
			return true
		}
	}
	c.misses++
	// Fill: insert at front, evict beyond associativity.
	if len(set.tags) < c.assoc {
		set.tags = append(set.tags, 0)
	}
	copy(set.tags[1:], set.tags)
	set.tags[0] = tag
	return false
}

// Hierarchy is a simulated L1/L2/L3 cache hierarchy.
type Hierarchy struct {
	Platform   Platform
	l1, l2, l3 *cache
}

// NewHierarchy returns an empty cache hierarchy for the platform.
func NewHierarchy(p Platform) *Hierarchy {
	return &Hierarchy{
		Platform: p,
		l1:       newCache(p.L1Size, p.L1Assoc, p.LineSize),
		l2:       newCache(p.L2Size, p.L2Assoc, p.LineSize),
		l3:       newCache(p.L3Size, p.L3Assoc, p.LineSize),
	}
}

// Access simulates one memory access to addr and returns the level that
// served it and its latency in cycles.
func (h *Hierarchy) Access(addr uint64) (CacheLevel, int) {
	p := &h.Platform
	if h.l1 != nil && h.l1.access(addr) {
		return LevelL1, p.L1Lat
	}
	if h.l2 != nil && h.l2.access(addr) {
		return LevelL2, p.L2Lat
	}
	if h.l3 != nil {
		if h.l3.access(addr) {
			return LevelL3, p.L3Lat
		}
		return LevelMemory, p.MemLat
	}
	return LevelMemory, p.MemLat
}

// Stats summarizes the hierarchy's hit/miss counters.
type Stats struct {
	Accesses  uint64
	L1Misses  uint64
	L2Misses  uint64
	LLCMisses uint64 // misses in the last level (L3, or L2 when no L3)
}

// Stats returns the accumulated counters.
func (h *Hierarchy) Stats() Stats {
	var s Stats
	if h.l1 != nil {
		s.Accesses = h.l1.accesses
		s.L1Misses = h.l1.misses
	}
	if h.l2 != nil {
		s.L2Misses = h.l2.misses
		s.LLCMisses = h.l2.misses
	}
	if h.l3 != nil {
		s.LLCMisses = h.l3.misses
	}
	return s
}

// Reset clears contents and counters.
func (h *Hierarchy) Reset() {
	p := h.Platform
	h.l1 = newCache(p.L1Size, p.L1Assoc, p.LineSize)
	h.l2 = newCache(p.L2Size, p.L2Assoc, p.LineSize)
	h.l3 = newCache(p.L3Size, p.L3Assoc, p.LineSize)
}
