// Differential tests for the burst fast path: every bundled workload is run
// through the reference Interpreter, the per-packet compiled path (Process)
// and the burst engine (ProcessBurst), and all three must agree on verdicts
// and rewritten headers — including bursts that mix drops, goto chains and
// controller punts, and burst sizes that exercise the MaxBurst chunking.
package eswitch

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime/debug"
	"strings"
	"testing"
	"time"

	"eswitch/internal/controller"
	"eswitch/internal/core"
	"eswitch/internal/cpumodel"
	"eswitch/internal/dpdk"
	"eswitch/internal/openflow"
	"eswitch/internal/pkt"
	"eswitch/internal/pktgen"
	"eswitch/internal/telemetry"
	"eswitch/internal/workload"
)

// diffFrame is one input packet of a differential case.
type diffFrame struct {
	data   []byte
	inPort uint32
}

func framesFromTrace(tr *pktgen.Trace, n int) []diffFrame {
	out := make([]diffFrame, 0, n)
	var p pkt.Packet
	for i := 0; i < n; i++ {
		tr.Next(&p)
		out = append(out, diffFrame{data: p.Data, inPort: p.InPort})
	}
	return out
}

// verdictsIdentical is the strict comparison between the two compiled paths:
// the burst engine must reproduce the per-packet path bit for bit, including
// statistics.
func verdictsIdentical(a, b *openflow.Verdict) bool {
	if a.ToController != b.ToController || a.Dropped != b.Dropped ||
		a.TableMiss != b.TableMiss || a.Modified != b.Modified || a.Tables != b.Tables {
		return false
	}
	if len(a.OutPorts) != len(b.OutPorts) {
		return false
	}
	for i := range a.OutPorts {
		if a.OutPorts[i] != b.OutPorts[i] {
			return false
		}
	}
	return true
}

// runDifferential runs one workload's frames through all three datapaths,
// with and without a cycle meter (the two compiled process variants).
func runDifferential(t *testing.T, name string, pl *openflow.Pipeline, frames []diffFrame, decompose bool) {
	t.Helper()
	n := len(frames)
	for _, metered := range []bool{false, true} {
		t.Run(fmt.Sprintf("%s/metered=%v", name, metered), func(t *testing.T) {
			interp := openflow.NewInterpreter(pl.Clone())
			interp.UpdateCounters = false
			opts := core.DefaultOptions()
			opts.Decompose = decompose
			if metered {
				opts.Meter = cpumodel.NewMeter(cpumodel.DefaultPlatform())
			}
			dp, err := core.Compile(pl, opts)
			if err != nil {
				t.Fatal(err)
			}

			// Reference and per-packet compiled runs.
			iv := make([]openflow.Verdict, n)
			ih := make([]pkt.Headers, n)
			sv := make([]openflow.Verdict, n)
			sh := make([]pkt.Headers, n)
			sm := make([]uint64, n)
			for i, f := range frames {
				p := pkt.Packet{Data: f.data, InPort: f.inPort}
				interp.Process(&p, &iv[i], nil)
				ih[i] = p.Headers
				p = pkt.Packet{Data: f.data, InPort: f.inPort}
				dp.Process(&p, &sv[i])
				sh[i], sm[i] = p.Headers, p.Metadata
			}

			// Per-packet compiled vs interpreter: same externally visible
			// outcome and same header rewrites.
			for i := range frames {
				if !sv[i].Equivalent(&iv[i]) || sv[i].ToController != iv[i].ToController || sv[i].Dropped != iv[i].Dropped {
					t.Fatalf("frame %d: compiled %s != interpreter %s", i, sv[i].String(), iv[i].String())
				}
				if sh[i] != ih[i] {
					t.Fatalf("frame %d: compiled headers %+v != interpreter headers %+v", i, sh[i], ih[i])
				}
			}

			// Burst runs at several burst sizes; n > core.MaxBurst exercises
			// the chunking path.
			for _, burst := range []int{1, 5, 32, n} {
				packets := make([]pkt.Packet, burst)
				ps := make([]*pkt.Packet, burst)
				for j := range packets {
					ps[j] = &packets[j]
				}
				vs := make([]openflow.Verdict, burst)
				for base := 0; base < n; base += burst {
					g := burst
					if n-base < g {
						g = n - base
					}
					for j := 0; j < g; j++ {
						packets[j] = pkt.Packet{Data: frames[base+j].data, InPort: frames[base+j].inPort}
					}
					dp.ProcessBurst(ps[:g], vs[:g])
					for j := 0; j < g; j++ {
						i := base + j
						if !verdictsIdentical(&vs[j], &sv[i]) {
							t.Fatalf("burst=%d frame %d: burst verdict %s != single %s", burst, i, vs[j].String(), sv[i].String())
						}
						if packets[j].Headers != sh[i] {
							t.Fatalf("burst=%d frame %d: burst headers %+v != single %+v", burst, i, packets[j].Headers, sh[i])
						}
						if packets[j].Metadata != sm[i] {
							t.Fatalf("burst=%d frame %d: burst metadata %#x != single %#x", burst, i, packets[j].Metadata, sm[i])
						}
					}
				}
			}
		})
	}
}

func TestBurstDifferentialL2(t *testing.T) {
	uc := workload.L2UseCase(64, 4)
	frames := framesFromTrace(uc.Trace(100), 100)
	// An unlearned destination address exercises the flood catch-all.
	b := pkt.NewBuilder(128)
	frames = append(frames, diffFrame{
		data:   pkt.Clone(b.EthernetFrame(pkt.EthernetOpts{Dst: pkt.MACFromUint64(0xdead), Src: pkt.MACFromUint64(7), EtherType: 0x0800}, nil)),
		inPort: 2,
	})
	runDifferential(t, "l2", uc.Pipeline, frames, false)
}

func TestBurstDifferentialL3(t *testing.T) {
	uc := workload.L3UseCase(400, 8, 7)
	frames := framesFromTrace(uc.Trace(100), 100)
	b := pkt.NewBuilder(128)
	// An ARP frame misses the IPv4 prerequisite of the LPM template and must
	// fall through to the drop catch-all; a bare L2 frame likewise.
	frames = append(frames,
		diffFrame{data: pkt.Clone(b.ARPPacket(pkt.EthernetOpts{Dst: pkt.MACFromUint64(1), Src: pkt.MACFromUint64(2)}, 1, 0x0a000001, 0x0a000002)), inPort: 1},
		diffFrame{data: pkt.Clone(b.EthernetFrame(pkt.EthernetOpts{Dst: pkt.MACFromUint64(1), Src: pkt.MACFromUint64(2), EtherType: 0x88cc}, nil)), inPort: 3},
	)
	runDifferential(t, "l3", uc.Pipeline, frames, false)
}

func TestBurstDifferentialLoadBalancer(t *testing.T) {
	uc := workload.LoadBalancerUseCase(50)
	// The trace already mixes admitted web traffic with dropped non-web
	// traffic; add reverse-direction packets from the backends.
	frames := framesFromTrace(uc.Trace(100), 100)
	b := pkt.NewBuilder(128)
	frames = append(frames, diffFrame{
		data: pkt.Clone(b.TCPPacket(pkt.EthernetOpts{Dst: pkt.MACFromUint64(2), Src: pkt.MACFromUint64(1)},
			pkt.IPv4Opts{Src: pkt.IPv4FromOctets(198, 51, 0, 3), Dst: pkt.IPv4FromOctets(203, 0, 113, 9)},
			pkt.L4Opts{Src: 80, Dst: 50000})),
		inPort: 2,
	})
	runDifferential(t, "loadbalancer", uc.Pipeline, frames, true)
	runDifferential(t, "loadbalancer-nodecomp", uc.Pipeline, frames, false)
}

func TestBurstDifferentialGateway(t *testing.T) {
	cfg := workload.GatewayConfig{CEs: 3, UsersPerCE: 5, Prefixes: 300, Seed: 5}
	uc := workload.GatewayUseCase(cfg)
	frames := framesFromTrace(uc.Trace(100), 100)
	b := pkt.NewBuilder(128)
	dstIP := pkt.IPv4FromOctets(203, 0, 113, 50)
	frames = append(frames,
		// Unknown user behind a known CE: per-CE table punts to controller.
		diffFrame{data: pkt.Clone(b.TCPPacket(
			pkt.EthernetOpts{Dst: pkt.MACFromUint64(1), Src: pkt.MACFromUint64(9), VLAN: 100},
			pkt.IPv4Opts{Src: pkt.IPv4FromOctets(10, 0, 7, 7), Dst: dstIP},
			pkt.L4Opts{Src: 1234, Dst: 80})), inPort: 1},
		// Unknown VLAN: the dispatch table punts.
		diffFrame{data: pkt.Clone(b.TCPPacket(
			pkt.EthernetOpts{Dst: pkt.MACFromUint64(1), Src: pkt.MACFromUint64(9), VLAN: 999},
			pkt.IPv4Opts{Src: pkt.IPv4FromOctets(10, 0, 0, 1), Dst: dstIP},
			pkt.L4Opts{Src: 1234, Dst: 80})), inPort: 1},
		// Downlink towards a known public address: rewritten and tagged.
		diffFrame{data: pkt.Clone(b.TCPPacket(
			pkt.EthernetOpts{Dst: pkt.MACFromUint64(1), Src: pkt.MACFromUint64(9)},
			pkt.IPv4Opts{Src: dstIP, Dst: pkt.IPv4FromOctets(100, 64+1, 0, 2)},
			pkt.L4Opts{Src: 80, Dst: 1234})), inPort: 2},
		// Downlink towards an unknown public address: punted.
		diffFrame{data: pkt.Clone(b.TCPPacket(
			pkt.EthernetOpts{Dst: pkt.MACFromUint64(1), Src: pkt.MACFromUint64(9)},
			pkt.IPv4Opts{Src: dstIP, Dst: pkt.IPv4FromOctets(100, 99, 0, 1)},
			pkt.L4Opts{Src: 80, Dst: 1234})), inPort: 2},
	)
	runDifferential(t, "gateway", uc.Pipeline, frames, false)
}

// TestBurstDifferentialMultiStage covers the production-shaped two-stage
// workloads the microflow-cache benchmarks run on: the port-security L2
// bridge (incl. an unknown source that must punt, and an unknown destination
// that must flood) and the ACL router (incl. a non-admitted tuple that must
// drop).
func TestBurstDifferentialMultiStage(t *testing.T) {
	l2 := workload.L2PortSecurityUseCase(64, 4)
	frames := framesFromTrace(l2.Trace(100), 100)
	b := pkt.NewBuilder(128)
	frames = append(frames,
		// Unknown source MAC: port security punts to the controller.
		diffFrame{data: pkt.Clone(b.EthernetFrame(pkt.EthernetOpts{
			Dst: pkt.MACFromUint64(0x020000000001), Src: pkt.MACFromUint64(0xbad), EtherType: 0x0800}, nil)), inPort: 1},
		// Known source, unknown destination: floods.
		diffFrame{data: pkt.Clone(b.EthernetFrame(pkt.EthernetOpts{
			Dst: pkt.MACFromUint64(0xdead), Src: pkt.MACFromUint64(0x020000000000), EtherType: 0x0800}, nil)), inPort: 1},
	)
	runDifferential(t, "l2-portsec", l2.Pipeline, frames, false)

	l3 := workload.L3ACLRouterUseCase(80, 200, 8, 7)
	frames = framesFromTrace(l3.Trace(100), 100)
	frames = append(frames, diffFrame{
		// Tuple outside the admission ACL: dropped at table 0.
		data: pkt.Clone(b.TCPPacket(pkt.EthernetOpts{},
			pkt.IPv4Opts{Src: pkt.IPv4FromOctets(203, 0, 113, 9), Dst: pkt.IPv4FromOctets(10, 0, 0, 1)},
			pkt.L4Opts{Src: 999, Dst: 22})), inPort: 1,
	})
	runDifferential(t, "l3-acl", l3.Pipeline, frames, false)
}

func TestBurstDifferentialFirewalls(t *testing.T) {
	b := pkt.NewBuilder(128)
	web := uint64(workload.WebServerIP)
	frames := []diffFrame{
		// Internal-to-external: forwarded unconditionally.
		{data: pkt.Clone(b.TCPPacket(pkt.EthernetOpts{}, pkt.IPv4Opts{Src: 9, Dst: 8}, pkt.L4Opts{Src: 80, Dst: 5000})), inPort: 2},
		// Admitted HTTP towards the web server.
		{data: pkt.Clone(b.TCPPacket(pkt.EthernetOpts{}, pkt.IPv4Opts{Src: 7, Dst: pkt.IPv4(web)}, pkt.L4Opts{Src: 4000, Dst: 80})), inPort: 1},
		// SSH towards the web server: dropped by the filter stage.
		{data: pkt.Clone(b.TCPPacket(pkt.EthernetOpts{}, pkt.IPv4Opts{Src: 7, Dst: pkt.IPv4(web)}, pkt.L4Opts{Src: 4001, Dst: 22})), inPort: 1},
		// UDP port 80: fails the TCP prerequisite, dropped.
		{data: pkt.Clone(b.UDPPacket(pkt.EthernetOpts{}, pkt.IPv4Opts{Src: 7, Dst: pkt.IPv4(web)}, pkt.L4Opts{Src: 4002, Dst: 80})), inPort: 1},
		// ARP from outside: dropped.
		{data: pkt.Clone(b.ARPPacket(pkt.EthernetOpts{}, 1, 0x0a000001, 0x0a000002)), inPort: 1},
	}
	runDifferential(t, "firewall-single", workload.FirewallSingleStage(), frames, false)
	runDifferential(t, "firewall-multi", workload.FirewallMultiStage(), frames, false)
}

// TestProcessBurstNoAllocs asserts the acceptance criterion directly: the
// steady-state burst path performs no allocations.
func TestProcessBurstNoAllocs(t *testing.T) {
	cases := []*workload.UseCase{
		workload.L2UseCase(1000, 4),
		workload.L3UseCase(1000, 8, 2016),
		workload.LoadBalancerUseCase(100),
		workload.GatewayUseCase(workload.GatewayConfig{CEs: 4, UsersPerCE: 8, Prefixes: 500, Seed: 3}),
	}
	for _, uc := range cases {
		t.Run(uc.Name, func(t *testing.T) {
			opts := core.DefaultOptions()
			opts.Decompose = uc.WantsDecomposition
			dp, err := core.Compile(uc.Pipeline, opts)
			if err != nil {
				t.Fatal(err)
			}
			tr := uc.Trace(256)
			const burst = 32
			packets := make([]pkt.Packet, burst)
			ps := make([]*pkt.Packet, burst)
			for j := range packets {
				ps[j] = &packets[j]
			}
			vs := make([]openflow.Verdict, burst)
			run := func() {
				for j := 0; j < burst; j++ {
					tr.Next(ps[j])
				}
				dp.ProcessBurstUnlocked(ps, vs)
			}
			// Warm the scratch pool and the verdict/action-set capacities,
			// then measure with the GC pinned so a pool eviction cannot
			// masquerade as a steady-state allocation.
			for i := 0; i < 8; i++ {
				run()
			}
			if raceEnabled {
				t.Skip("allocation accounting is meaningless under the race detector")
			}
			defer debug.SetGCPercent(debug.SetGCPercent(-1))
			if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
				t.Fatalf("ProcessBurst allocates %v per burst in steady state", allocs)
			}
		})
	}
}

// TestWorkerPathZeroLocksZeroAllocs asserts the multi-queue acceptance
// criterion directly: the steady-state worker path — RX burst → ProcessBurst
// → staged TX flush — performs zero mutex acquisitions (on both the datapath
// and the switch) and zero allocations per poll iteration.  The flowcache
// variant runs the identical assertions with the microflow verdict cache
// enabled: probe, patch replay and install must all stay off the allocator
// and off every mutex.
// The megaflow variant shrinks the microflow cache below the working set so
// the steady state exercises the second-level masked probe, megaflow hit
// replay and microflow promotion on every poll — all of which must likewise
// stay allocation- and lock-free (mask groups are created once, during
// warmup).
func TestWorkerPathZeroLocksZeroAllocs(t *testing.T) {
	t.Run("flowcache=off", func(t *testing.T) { testWorkerPathZeroLocksZeroAllocs(t, 0, 0) })
	t.Run("flowcache=on", func(t *testing.T) { testWorkerPathZeroLocksZeroAllocs(t, 4096, 0) })
	t.Run("megaflow=on", func(t *testing.T) { testWorkerPathZeroLocksZeroAllocs(t, 64, 4096) })
}

// idleSupervisor connects a supervised control channel to a throwaway
// controller endpoint and parks it: the echo interval is an hour, so during
// the measured window the supervisor goroutine sits blocked in its select
// and the agent sits blocked in a read — supervision armed, zero background
// activity.
func idleSupervisor(t *testing.T, dp controller.FlowProgrammer) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		if c, err := ln.Accept(); err == nil {
			accepted <- c
		}
	}()
	sup, err := controller.NewSupervisor(controller.SupervisorConfig{
		Dial:         func() (net.Conn, error) { return net.Dial("tcp", ln.Addr().String()) },
		Agent:        controller.NewAgent(dp),
		EchoInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Start()
	t.Cleanup(func() {
		sup.Stop()
		ln.Close()
		select {
		case c := <-accepted:
			c.Close()
		default:
		}
	})
	for i := 0; sup.State() != controller.SupervisorUp; i++ {
		if i > 5000 {
			t.Fatal("supervisor never established its session")
		}
		time.Sleep(time.Millisecond)
	}
}

func testWorkerPathZeroLocksZeroAllocs(t *testing.T, flowCache, megaflow int) {
	uc := workload.L3UseCase(1000, 4, 2016)
	opts := core.DefaultOptions()
	opts.FlowCache = flowCache
	opts.Megaflow = megaflow
	// The capacity guardrail is part of the armed failure plane; it gates
	// AddFlow only, so the worker path below must never feel it.
	opts.MaxTableEntries = 4096
	dp, err := core.Compile(uc.Pipeline, opts)
	if err != nil {
		t.Fatal(err)
	}
	sw := dpdk.NewSwitchWithConfig(dp, dpdk.SwitchConfig{NumPorts: uc.Pipeline.NumPorts, RingSize: 4096, Queues: dpdk.DefaultQueues})
	// The slow path must stay off the hot path: with the punt rings armed
	// but no punting traffic (the L3 workload never punts), the worker loop
	// below must remain zero-lock and zero-alloc.
	if _, err := sw.ArmPuntRings(256, 0); err != nil {
		t.Fatal(err)
	}
	// The rest of the failure plane rides along: punt-storm filter armed,
	// fail mode explicit, and an idle supervised control channel connected.
	// None of it may cost the zero-punt worker path a lock or an allocation.
	sw.SetPuntFilter(1024, 64)
	sw.SetFailMode(dpdk.FailNormal)
	idleSupervisor(t, dp)
	// The port fault domain rides along at full cadence: the supervisor
	// scans every queue's error slot and the heartbeat registry once per
	// millisecond throughout the measured window.  Its scan reads only
	// atomics, so it must cost the worker path nothing — no lock on the
	// switch's counted mutex, no allocation.
	psup := sw.StartPortSupervisor(dpdk.PortSupervisorConfig{Interval: time.Millisecond, Seed: 1})
	t.Cleanup(psup.Stop)
	// The observability plane rides along fully armed: latency sampling on
	// (the worker path pays its two clock reads and two atomic adds per
	// burst — which must stay lock- and allocation-free), the metrics
	// endpoint serving, and the flow exporter started.  The exporter's
	// timers are parked at an hour, like the idle supervisor above: armed,
	// but its locked flow-table walk never lands inside the measured window
	// (scrapes and exports are reader-side and cost the workers nothing).
	sw.SetLatencySampling(true)
	reg := telemetry.NewRegistry()
	telemetry.RegisterSwitch(reg, telemetry.SwitchSource{Switch: sw, Datapath: dp, Supervisor: psup})
	telemetry.RegisterGoRuntime(reg)
	msrv, err := telemetry.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { msrv.Close() })
	exporter := telemetry.NewFlowExporter(dp, &telemetry.MemorySink{}, telemetry.ExporterConfig{
		PollInterval: time.Hour, ActiveTimeout: time.Hour, IdleTimeout: time.Hour,
	})
	exporter.Start()
	t.Cleanup(func() { exporter.Close() })
	// Prove the endpoint actually serves the armed surface before the
	// measured window (the scrape folds counters under the switch mutex, so
	// it must precede the lock snapshot).
	if resp, err := http.Get("http://" + msrv.Addr() + "/metrics"); err != nil {
		t.Fatal(err)
	} else {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(body), "eswitch_burst_duration_seconds_count") {
			t.Fatalf("armed metrics endpoint missing latency histogram:\n%.400s", body)
		}
	}
	trace := uc.Trace(512)
	frames := make([][]byte, 256)
	for i := range frames {
		frames[i], _ = trace.Frame(i)
	}
	port, _ := sw.Port(1)
	run := func() {
		for _, f := range frames {
			port.InjectOn(dpdk.AutoQueue, f)
		}
		for sw.PollOnce(nil) > 0 {
		}
		for _, p := range sw.Ports() {
			p.DrainTx()
		}
	}
	// Warm the worker-state pool, the TX staging capacities and the burst
	// scratch, then measure.
	for i := 0; i < 4; i++ {
		run()
	}
	lockedDP, lockedSW := dp.MutexOps(), sw.MutexOps()
	// Pin the GC so a worker-state pool eviction cannot masquerade as a
	// lock acquisition (pool refills register a fresh state under the
	// mutex) or as a steady-state allocation.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if !raceEnabled {
		// The allocation assertion only makes sense uninstrumented (the
		// race detector itself allocates).
		if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
			t.Fatalf("worker poll path allocates %v per iteration in steady state", allocs)
		}
	} else {
		for i := 0; i < 20; i++ {
			run()
		}
	}
	if got := dp.MutexOps(); got != lockedDP {
		t.Fatalf("datapath mutex acquired %d times on the worker path", got-lockedDP)
	}
	// Race builds randomize sync.Pool (Puts are dropped deliberately), so
	// PollOnce's pooled worker state gets re-created — and re-registered
	// under the mutex — at random; the assertion only holds uninstrumented.
	if got := sw.MutexOps(); !raceEnabled && got != lockedSW {
		t.Fatalf("switch mutex acquired %d times on the worker path", got-lockedSW)
	}
	// (Stats itself takes the counted mutex, so the zero-punt premise is
	// checked only after the lock assertions.)
	st := sw.Stats()
	if st.Punts != 0 || st.PuntDrops != 0 || st.PuntSuppressed != 0 || st.PuntFiltered != 0 {
		t.Fatalf("steady-state workload punted (%d/%d, %d suppressed, %d filtered) — the zero-punt premise broke",
			st.Punts, st.PuntDrops, st.PuntSuppressed, st.PuntFiltered)
	}
	// The canonical counter identities hold over the full armed plane.
	if err := st.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
	// Latency sampling was armed throughout: the measured window's bursts
	// must appear in the folded histogram.
	if lat := sw.BurstLatency(); lat.Count() == 0 {
		t.Fatal("latency sampling armed but the burst histogram is empty")
	}
	// The epoch-pinned facade burst path must also stay lock-free.
	packets := make([]pkt.Packet, 32)
	ps := make([]*pkt.Packet, 32)
	vs := make([]openflow.Verdict, 32)
	for i := range packets {
		trace.Next(&packets[i])
		ps[i] = &packets[i]
	}
	before := dp.MutexOps()
	for i := 0; i < 50; i++ {
		dp.ProcessBurst(ps, vs)
	}
	if got := dp.MutexOps(); got != before {
		t.Fatalf("ProcessBurst acquired the mutex %d times", got-before)
	}

	// The worker-local resource plane must not reintroduce shared state on
	// the registered-worker path: a worker handle owns its burst scratch
	// outright, so driving bursts through it stays zero-lock and
	// zero-alloc, with no pool traffic at all.
	w := dp.RegisterWorker()
	defer dp.UnregisterWorker(w)
	runWorker := func() {
		w.Enter()
		w.ProcessBurst(ps, vs)
		w.Exit()
	}
	runWorker()
	lockedDP = dp.MutexOps()
	if !raceEnabled {
		if allocs := testing.AllocsPerRun(20, runWorker); allocs != 0 {
			t.Fatalf("registered-worker burst path allocates %v per burst", allocs)
		}
	} else {
		for i := 0; i < 20; i++ {
			runWorker()
		}
	}
	if got := dp.MutexOps(); got != lockedDP {
		t.Fatalf("registered-worker burst path acquired the mutex %d times", got-lockedDP)
	}
	if flowCache > 0 {
		if !dp.FlowCacheEnabled() {
			t.Fatal("flowcache variant compiled an uncacheable pipeline")
		}
		st := dp.FlowCacheStats()
		if st.Hits == 0 || st.Misses == 0 {
			t.Fatalf("flowcache variant should have mixed hits and misses: %+v", st)
		}
	}
	if megaflow > 0 {
		if !dp.MegaflowEnabled() {
			t.Fatal("megaflow variant compiled an uncacheable pipeline")
		}
		ms := dp.MegaflowStats()
		if ms.Hits == 0 {
			t.Fatalf("megaflow variant never hit the masked cache — the measured path did not exercise it: %+v", ms)
		}
	}
}

// TestSwitchStatsFoldFlowCache is the stats-surface acceptance test: the
// dpdk switch folds the datapath's per-worker cache counters into its own
// Stats, and with the cache on every processed packet is exactly one hit or
// one miss (fold exactness), with hits appearing as soon as flows repeat.
func TestSwitchStatsFoldFlowCache(t *testing.T) {
	uc := workload.L3UseCase(500, 4, 2016)
	opts := core.DefaultOptions()
	opts.FlowCache = 4096
	dp, err := core.Compile(uc.Pipeline, opts)
	if err != nil {
		t.Fatal(err)
	}
	sw := dpdk.NewSwitchWithConfig(dp, dpdk.SwitchConfig{NumPorts: uc.Pipeline.NumPorts, RingSize: 4096, Queues: dpdk.DefaultQueues})
	trace := uc.Trace(256)
	frames := make([][]byte, 256)
	for i := range frames {
		frames[i], _ = trace.Frame(i)
	}
	port, _ := sw.Port(1)
	for pass := 0; pass < 3; pass++ {
		for _, f := range frames {
			port.InjectOn(dpdk.AutoQueue, f)
		}
		for sw.PollOnce(nil) > 0 {
		}
		for _, p := range sw.Ports() {
			p.DrainTx()
		}
	}
	st := sw.Stats()
	if st.Processed != uint64(3*len(frames)) {
		t.Fatalf("processed %d, want %d", st.Processed, 3*len(frames))
	}
	if st.CacheHits+st.CacheMisses != st.Processed {
		t.Fatalf("fold exactness violated: hits %d + misses %d != processed %d",
			st.CacheHits, st.CacheMisses, st.Processed)
	}
	// The same identity (and its punt and megaflow siblings) as the
	// canonical checker states them.
	if err := st.CheckInvariants(false); err != nil {
		t.Fatal(err)
	}
	if st.CacheHits == 0 {
		t.Fatal("replayed flows produced no cache hits")
	}
	if st.CacheStale > st.CacheMisses {
		t.Fatalf("stale %d exceeds misses %d", st.CacheStale, st.CacheMisses)
	}
	// The core-level fold must agree with the substrate's.
	hits, misses, stale := dp.FlowCacheCounters()
	if hits != st.CacheHits || misses != st.CacheMisses || stale != st.CacheStale {
		t.Fatalf("substrate fold (%d,%d,%d) != datapath fold (%d,%d,%d)",
			st.CacheHits, st.CacheMisses, st.CacheStale, hits, misses, stale)
	}
}

// TestMeterShardsOffHotPath asserts the two meter halves of the worker-local
// resource plane acceptance criterion:
//
//  1. meter-disabled datapaths register workers with no meter shard at all —
//     the hot path contains no metering calls, so shards add zero cost;
//  2. metered datapaths register each worker's shard exactly once, at
//     RegisterWorker time: steady-state polling and bursts never touch the
//     shard registry mutex (cpumodel.Meter.RegistryOps stays flat) or the
//     datapath writer mutex.
func TestMeterShardsOffHotPath(t *testing.T) {
	uc := workload.L3UseCase(1000, 4, 2016)

	// Unmetered: no shards ever appear.
	plain, err := core.Compile(uc.Pipeline, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Meter() != nil {
		t.Fatal("unmetered datapath has a meter")
	}
	wPlain := plain.RegisterWorker()
	defer plain.UnregisterWorker(wPlain)

	// Metered: shards register once per worker, then stay off the path.
	meter := cpumodel.NewMeter(cpumodel.DefaultPlatform())
	opts := core.DefaultOptions()
	opts.Meter = meter
	dp, err := core.Compile(uc.Pipeline, opts)
	if err != nil {
		t.Fatal(err)
	}
	sw := dpdk.NewSwitchWithConfig(dp, dpdk.SwitchConfig{NumPorts: uc.Pipeline.NumPorts, RingSize: 4096, Queues: dpdk.DefaultQueues})
	trace := uc.Trace(512)
	frames := make([][]byte, 256)
	for i := range frames {
		frames[i], _ = trace.Frame(i)
	}
	port, _ := sw.Port(1)
	run := func() {
		for _, f := range frames {
			port.InjectOn(dpdk.AutoQueue, f)
		}
		for sw.PollOnce(nil) > 0 {
		}
		for _, p := range sw.Ports() {
			p.DrainTx()
		}
	}
	for i := 0; i < 4; i++ {
		run() // warm the pinned-worker pool (each pin registers one shard)
	}
	shards := meter.NumShards()
	if shards == 0 {
		t.Fatal("metered polling registered no meter shards")
	}
	// Note the order: the folded read accessors (Packets &c.) take the
	// registry lock by design — they are admin-path — so snapshot the op
	// counters after the last stats read and before the measured polling.
	packetsBefore := meter.Packets()
	registry, locked := meter.RegistryOps(), dp.MutexOps()
	for i := 0; i < 20; i++ {
		run()
	}
	if got := meter.RegistryOps(); got != registry {
		t.Fatalf("steady-state metered polling touched the shard registry %d times", got-registry)
	}
	if got := dp.MutexOps(); got != locked {
		t.Fatalf("steady-state metered polling acquired the datapath mutex %d times", got-locked)
	}
	if got := meter.NumShards(); got != shards {
		t.Fatalf("steady-state polling changed the shard count %d -> %d", shards, got)
	}
	if meter.Packets() == packetsBefore {
		t.Fatal("metered polling charged no packets")
	}
	// Fold exactness: every processed packet was metered exactly once.
	if st := sw.Stats(); meter.Packets() != st.Processed {
		t.Fatalf("meter folded %d packets, switch processed %d", meter.Packets(), st.Processed)
	}
}
