package eswitch_test

import (
	"testing"

	"eswitch"
)

// TestQuickstartFirewall exercises the public facade end to end: build the
// Fig. 1 firewall, compile it, forward packets, update it.
func TestQuickstartFirewall(t *testing.T) {
	webServer := uint64(eswitch.IPv4FromOctets(192, 0, 2, 1))
	pl := eswitch.NewPipeline(2)
	t0 := pl.Table(0)
	t0.AddFlow(300, eswitch.NewMatch().Set(eswitch.FieldInPort, 2), eswitch.Apply(eswitch.Output(1)))
	t0.AddFlow(200, eswitch.NewMatch().
		Set(eswitch.FieldInPort, 1).
		Set(eswitch.FieldIPDst, webServer).
		Set(eswitch.FieldTCPDst, 80),
		eswitch.Apply(eswitch.Output(2)))
	t0.AddFlow(100, eswitch.NewMatch(), eswitch.Apply(eswitch.Drop()))

	sw, err := eswitch.New(pl, eswitch.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Stages()) != 1 {
		t.Fatalf("stages: %v", sw.Stages())
	}

	flows := []eswitch.TrafficFlow{
		{InPort: 1, DstIP: eswitch.IPv4FromOctets(192, 0, 2, 1), DstPort: 80, SrcIP: 7, SrcPort: 40000},
		{InPort: 1, DstIP: eswitch.IPv4FromOctets(192, 0, 2, 1), DstPort: 22, SrcIP: 7, SrcPort: 40001},
		{InPort: 2, DstIP: 9, DstPort: 55000, SrcIP: eswitch.IPv4FromOctets(192, 0, 2, 1), SrcPort: 80},
	}
	trace := eswitch.NewTrace(flows, 0)
	var p eswitch.Packet
	var v eswitch.Verdict
	wantForwarded := []bool{true, false, true}
	wantPort := []uint32{2, 0, 1}
	for i := range flows {
		trace.Next(&p)
		sw.Process(&p, &v)
		if v.Forwarded() != wantForwarded[i] {
			t.Fatalf("flow %d: %s", i, v.String())
		}
		if v.Forwarded() && v.OutPorts[0] != wantPort[i] {
			t.Fatalf("flow %d went to port %d", i, v.OutPorts[0])
		}
	}

	// Live update through the facade.
	if err := sw.AddFlow(0, eswitch.NewEntry(250,
		eswitch.NewMatch().Set(eswitch.FieldInPort, 1).Set(eswitch.FieldIPDst, webServer).Set(eswitch.FieldUDPDst, 53),
		eswitch.Apply(eswitch.Output(2)))); err != nil {
		t.Fatal(err)
	}
	if removed, err := sw.DeleteFlow(0, eswitch.NewMatch().Set(eswitch.FieldInPort, 2), 300); err != nil || removed != 1 {
		t.Fatalf("delete: %d %v", removed, err)
	}
}

// TestFacadeUseCasesAndBaseline compiles every bundled use case with both
// datapaths through the public API.
func TestFacadeUseCasesAndBaseline(t *testing.T) {
	cases := []*eswitch.UseCase{
		eswitch.L2UseCase(100, 4),
		eswitch.L3UseCase(500, 8, 1),
		eswitch.LoadBalancerUseCase(10),
		eswitch.GatewayUseCase(eswitch.GatewayConfig{CEs: 2, UsersPerCE: 4, Prefixes: 100, Seed: 1}),
	}
	for _, uc := range cases {
		opts := eswitch.DefaultOptions()
		opts.Decompose = uc.WantsDecomposition
		opts.Meter = eswitch.NewMeter(eswitch.DefaultPlatform())
		sw, err := eswitch.New(uc.Pipeline, opts)
		if err != nil {
			t.Fatalf("%s: %v", uc.Name, err)
		}
		baseline, err := eswitch.NewBaseline(uc.Pipeline, eswitch.DefaultBaselineOptions())
		if err != nil {
			t.Fatalf("%s baseline: %v", uc.Name, err)
		}
		interp := eswitch.NewInterpreter(uc.Pipeline)
		trace := uc.Trace(256)
		var p eswitch.Packet
		var v1, v2, v3 eswitch.Verdict
		for i := 0; i < 512; i++ {
			trace.Next(&p)
			q1 := eswitch.Packet{Data: append([]byte(nil), p.Data...), InPort: p.InPort}
			q2 := eswitch.Packet{Data: append([]byte(nil), p.Data...), InPort: p.InPort}
			q3 := eswitch.Packet{Data: append([]byte(nil), p.Data...), InPort: p.InPort}
			sw.Process(&q1, &v1)
			baseline.Process(&q2, &v2)
			interp.Process(&q3, &v3, nil)
			if !v1.Equivalent(&v3) || !v2.Equivalent(&v3) {
				t.Fatalf("%s packet %d: eswitch=%s baseline=%s interpreter=%s",
					uc.Name, i, v1.String(), v2.String(), v3.String())
			}
		}
		if sw.Meter().Packets() == 0 || sw.Meter().CyclesPerPacket() <= 0 {
			t.Fatalf("%s: meter not accounting", uc.Name)
		}
		model := sw.PerformanceModel(uc.Name)
		if model.FixedCycles() <= 0 {
			t.Fatalf("%s: empty performance model", uc.Name)
		}
	}
}

// TestFacadePerfModel checks the Fig. 20 numbers through the facade.
func TestFacadePerfModel(t *testing.T) {
	m := eswitch.GatewayPerfModel()
	p := eswitch.DefaultPlatform()
	b := m.Bounds(p)
	if b.UpperCycles != 178 || b.LowerCycles != 253 {
		t.Fatalf("bounds %+v", b)
	}
}
