package eswitch

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"eswitch/internal/core"
	"eswitch/internal/dpdk"
	"eswitch/internal/experiments"
	"eswitch/internal/ofp"
	"eswitch/internal/openflow"
	"eswitch/internal/pkt"
	"eswitch/internal/pktgen"
	"eswitch/internal/slowpath"
	"eswitch/internal/workload"
)

// TestReactiveLearningEndToEnd is the acceptance test of the slow-path
// subsystem: an L2 learning controller attached over a REAL TCP OpenFlow
// channel receives the first-packet PacketIns of a multi-host trace through
// the per-worker punt rings, installs flows reactively, and subsequent
// traffic forwards entirely on the fast path — the punt rate converges to
// zero, the accounting invariant delivered + PuntDrops == ToCtrl holds, and
// with the microflow cache enabled the post-convergence traffic is served
// from cache hits installed after the last FlowMod.
func TestReactiveLearningEndToEnd(t *testing.T) {
	const hosts = 128
	h, err := experiments.NewSlowPathHarness(experiments.SlowPathConfig{
		Hosts:     hosts,
		Flows:     hosts,
		FlowCache: 4096,
		PuntRing:  512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	passes, err := h.Converge(64, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("converged in %d passes: %d PacketIns, %d FlowMods, %d floods",
		passes, h.Learner.PacketIns(), h.Learner.FlowMods(), h.Learner.Floods())
	if h.Learner.FlowMods() == 0 || h.Learner.Learned() == 0 {
		t.Fatalf("controller learned nothing: %d flows, %d stations", h.Learner.FlowMods(), h.Learner.Learned())
	}
	if h.Learner.Err() != nil {
		t.Fatalf("controller channel error: %v", h.Learner.Err())
	}

	// Accounting invariant: every punted verdict is either a delivered
	// PacketIn or an accounted ring drop (rings are empty after WaitQuiet).
	st := h.SW.Stats()
	if st.ToCtrl == 0 {
		t.Fatal("no punts happened — the reactive path went untested")
	}
	if h.Service.SendErrors() != 0 {
		t.Fatalf("%d PacketIns lost to send errors", h.Service.SendErrors())
	}
	if h.Service.Delivered()+st.PuntDrops != st.ToCtrl {
		t.Fatalf("accounting broken: delivered %d + puntDrops %d != toCtrl %d",
			h.Service.Delivered(), st.PuntDrops, st.ToCtrl)
	}
	if st.Punts+st.PuntDrops != st.ToCtrl {
		t.Fatalf("ring accounting broken: punts %d + drops %d != toCtrl %d", st.Punts, st.PuntDrops, st.ToCtrl)
	}

	// Post-convergence: pure fast path, zero punts, cache hits flowing.
	cacheBefore := h.DP.FlowCacheStats()
	before := h.SW.Stats()
	mpps, punts := h.MeasureForwarding(20_000)
	after := h.SW.Stats()
	if punts != 0 {
		t.Fatalf("post-convergence traffic still punted %d packets", punts)
	}
	if got := after.Forwarded - before.Forwarded; got != 20_000 {
		t.Fatalf("post-convergence forwarded %d of 20000", got)
	}
	cacheAfter := h.DP.FlowCacheStats()
	if cacheAfter.Hits <= cacheBefore.Hits {
		t.Fatalf("microflow cache not engaged post-convergence: %+v -> %+v", cacheBefore, cacheAfter)
	}
	t.Logf("post-convergence: %.2f Mpps, cache %+v", mpps, cacheAfter)
}

// TestReactiveLearningUnderRunWorkers drives the same closed loop with real
// concurrent forwarding workers instead of the deterministic PollOnce
// driver, under live injection — primarily a -race acceptance test for the
// punt rings against the full stack.
func TestReactiveLearningUnderRunWorkers(t *testing.T) {
	h, err := experiments.NewSlowPathHarness(experiments.SlowPathConfig{Hosts: 64, PuntRing: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	stop := h.SW.RunWorkers(2)
	deadline := time.Now().Add(20 * time.Second)
	converged := false
	for time.Now().Before(deadline) && !converged {
		h.InjectAll()
		for _, p := range h.SW.Ports() {
			p.DrainTx()
		}
		time.Sleep(2 * time.Millisecond)
		st := h.SW.Stats()
		// Converged when a recent window generated no punts but plenty of
		// forwarding.
		beforeCtrl := st.ToCtrl
		h.InjectAll()
		time.Sleep(5 * time.Millisecond)
		for _, p := range h.SW.Ports() {
			p.DrainTx()
		}
		st = h.SW.Stats()
		converged = st.ToCtrl == beforeCtrl && st.Forwarded > 0
	}
	stop()
	if !converged {
		st := h.SW.Stats()
		t.Fatalf("did not converge under RunWorkers: %+v (flowmods %d)", st, h.Learner.FlowMods())
	}
	st := h.SW.Stats()
	if st.Punts+st.PuntDrops != st.ToCtrl {
		t.Fatalf("ring accounting broken under workers: %+v", st)
	}
}

// TestPuntOverflowAccountingOverTCP forces ring overflow against a live TCP
// controller: a storm of unlearnable punts (destination outside the host
// set, so the controller floods and installs nothing) meets the smallest
// ring the burst guardrail allows behind a rate-capped drain, overflows it,
// and the excess is dropped at the ring — never blocking the fast path —
// with the books still balancing: delivered PacketIns + PuntDrops == ToCtrl.
// The storm is deliberately disjoint from the learnable sweep: punts DROPPED
// for learnable flows can starve discovery forever (the dropped sender's own
// flow may get its destination installed via another sender and never punt
// again, leaving its MAC unlearned), so overflow pressure must come from
// traffic whose delivery teaches the controller nothing it needs.  For the
// same reason the host count stays below the ring capacity: a whole sweep
// must fit the ring, so every host's first punt is delivered and learned.
func TestPuntOverflowAccountingOverTCP(t *testing.T) {
	h, err := experiments.NewSlowPathHarness(experiments.SlowPathConfig{
		Hosts:    48,  // a full sweep fits the 63-slot ring: no learnable drops
		PuntRing: 64,  // capacity 63: the guardrail floor (>= RX burst)
		PuntRate: 500, // slow drain: the storm below outruns it and overflows
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	// 400 storm punts against a 63-slot ring draining at 500 pps: overflow
	// is guaranteed, and every copy punts no matter how many were already
	// delivered.  Then let the loop quiesce and check the books.
	h.InjectStorm(400)
	h.PollDrain()
	if err := h.WaitQuiet(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := h.SW.Stats()
	if st.PuntDrops == 0 {
		t.Fatalf("storm never overflowed the ring (%+v) — the test lost its point", st)
	}
	if h.Service.Delivered()+st.PuntDrops != st.ToCtrl {
		t.Fatalf("overflow accounting broken: delivered %d + drops %d != toCtrl %d",
			h.Service.Delivered(), st.PuntDrops, st.ToCtrl)
	}
	// The storm only cost drops, not state: full-sweep passes (each fitting
	// the ring whole, so every host's punt is delivered) still converge to
	// zero punts through the rate-capped drain.
	if _, err := h.Converge(8, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, punts := h.MeasureForwarding(5_000); punts != 0 {
		t.Fatalf("post-convergence punts after overflow: %d", punts)
	}
}

// puntRecordKey summarizes one PacketIn-able punt for sequence comparison.
type puntRecordKey struct {
	frame  string
	inPort uint32
	table  openflow.TableID
	reason openflow.PuntReason
}

// collectPuntSequence runs the trace through a fresh switch (flowcache on or
// off), punt rings armed, replaying the flow set `passes` times, and returns
// the full punt sequence in delivery order.
func collectPuntSequence(t *testing.T, flowCache int, pl *openflow.Pipeline, trace *pktgen.Trace, flows, passes int) ([]puntRecordKey, dpdk.WorkerStats) {
	t.Helper()
	opts := core.DefaultOptions()
	opts.FlowCache = flowCache
	dp, err := core.Compile(pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if flowCache > 0 && !dp.FlowCacheEnabled() {
		t.Fatal("differential pipeline must be cacheable")
	}
	sw := dpdk.NewSwitchWithConfig(dp, dpdk.SwitchConfig{NumPorts: pl.NumPorts, RingSize: 8192, Queues: dpdk.DefaultQueues})
	rings, err := sw.ArmPuntRings(1<<16, 0)
	if err != nil {
		t.Fatal(err)
	}
	var seq []puntRecordKey
	var rec slowpath.PuntRecord
	drain := func() {
		for _, r := range rings {
			for r.Pop(&rec) {
				seq = append(seq, puntRecordKey{
					frame:  string(rec.Frame),
					inPort: rec.InPort,
					table:  rec.Table,
					reason: rec.Reason,
				})
			}
		}
	}
	var p pkt.Packet
	for pass := 0; pass < passes; pass++ {
		for i := 0; i < flows; i++ {
			trace.Next(&p)
			port, err := sw.Port(p.InPort)
			if err != nil {
				t.Fatal(err)
			}
			port.InjectOn(dpdk.AutoQueue, p.Data)
		}
		for sw.PollOnce(nil) > 0 {
		}
		for _, port := range sw.Ports() {
			port.DrainTx()
		}
		drain()
	}
	st := sw.Stats()
	if flowCache > 0 {
		if cs := dp.FlowCacheStats(); cs.Hits == 0 {
			t.Fatalf("cache-on run never hit the cache: %+v", cs)
		}
	}
	return seq, st
}

// TestFlowCachePuntDifferential is the flowcache-correctness satellite: a
// cache hit replaying a punt verdict must enqueue to the punt ring exactly
// like a miss-path punt, so the same trace with the flowcache on and off
// delivers IDENTICAL PacketIn sequences (frame, in-port, originating table,
// reason — in order).
func TestFlowCachePuntDifferential(t *testing.T) {
	const numPorts = 4
	pl := openflow.NewPipeline(numPorts)
	pl.Miss = openflow.MissController
	t0 := pl.Table(0)
	t0.Name = "port-security"
	t1 := pl.AddTable(1)
	t1.Name = "mac"
	known := 32
	mac := func(i int) pkt.MAC { return pkt.MACFromUint64(0x020000000000 + uint64(i)) }
	for i := 0; i < known; i++ {
		t0.AddFlow(100, openflow.NewMatch().
			Set(openflow.FieldInPort, uint64(1+i%numPorts)).
			Set(openflow.FieldEthSrc, mac(i).Uint64()),
			openflow.Goto(1))
		if i%2 == 0 {
			// Only even stations are known destinations: odd destinations
			// miss table 1 and punt with reason no_match.
			t1.AddFlow(100, openflow.NewMatch().Set(openflow.FieldEthDst, mac(i).Uint64()),
				openflow.Apply(openflow.Output(uint32(1+i%numPorts))))
		}
	}
	// Unknown sources punt explicitly from table 0 (reason action).
	t0.AddFlow(0, openflow.NewMatch(), openflow.Apply(openflow.ToController()))

	flows := make([]pktgen.Flow, 0, 64)
	for f := 0; f < 64; f++ {
		src := f % (known + 8) // the +8 tail is unknown sources
		flows = append(flows, pktgen.Flow{
			InPort: uint32(1 + src%numPorts),
			SrcMAC: mac(src),
			DstMAC: mac((f * 7) % (known + 4)), // mix of known/unknown/odd dsts
			L2Only: true,
		})
	}

	build := func() *pktgen.Trace { return pktgen.NewTrace(flows, 42) }
	offSeq, offStats := collectPuntSequence(t, 0, pl, build(), len(flows), 3)
	onSeq, onStats := collectPuntSequence(t, 4096, pl, build(), len(flows), 3)

	if len(offSeq) == 0 {
		t.Fatal("trace produced no punts — differential is vacuous")
	}
	if offStats.PuntDrops != 0 || onStats.PuntDrops != 0 {
		t.Fatalf("ring overflowed (off %d, on %d) — size it up", offStats.PuntDrops, onStats.PuntDrops)
	}
	if len(onSeq) != len(offSeq) {
		t.Fatalf("punt counts differ: flowcache off %d, on %d", len(offSeq), len(onSeq))
	}
	for i := range offSeq {
		if offSeq[i] != onSeq[i] {
			t.Fatalf("PacketIn %d differs:\n  off: port %d table %d reason %v frame %x\n  on:  port %d table %d reason %v frame %x",
				i, offSeq[i].inPort, offSeq[i].table, offSeq[i].reason, offSeq[i].frame,
				onSeq[i].inPort, onSeq[i].table, onSeq[i].reason, onSeq[i].frame)
		}
	}
	// Both runs punted the same packets for the same reasons; sanity-check
	// the mix covered both punt flavours.
	sawMiss, sawAction := false, false
	for _, r := range offSeq {
		switch r.reason {
		case openflow.PuntMiss:
			sawMiss = true
		case openflow.PuntAction:
			sawAction = true
		}
	}
	if !sawMiss || !sawAction {
		t.Fatalf("differential did not cover both punt reasons (miss=%v action=%v)", sawMiss, sawAction)
	}
}

// TestFacadePuntSubscriptionAndPacketOut covers the facade surface: punts
// from Process/ProcessBurst land in the subscription ring with reason and
// table, and PacketOut executes action lists including output:TABLE
// re-injection through the compiled pipeline.
func TestFacadePuntSubscriptionAndPacketOut(t *testing.T) {
	pl := NewPipeline(4)
	pl.Miss = openflow.MissController
	pl.Table(0).AddFlow(100, NewMatch().Set(FieldEthDst, 0x42), Apply(Output(2)))
	sw, err := New(pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ring := sw.SubscribePunts(64, 0)

	b := pkt.NewBuilder(64)
	hit := pkt.Clone(b.EthernetFrame(pkt.EthernetOpts{Dst: pkt.MACFromUint64(0x42), EtherType: 0x0800}, nil))
	miss := pkt.Clone(b.EthernetFrame(pkt.EthernetOpts{Dst: pkt.MACFromUint64(0x43), EtherType: 0x0800}, nil))

	var v Verdict
	sw.Process(&Packet{Data: hit, InPort: 1}, &v)
	if !v.Forwarded() || ring.Len() != 0 {
		t.Fatalf("hit verdict %v, ring %d", v.String(), ring.Len())
	}
	sw.Process(&Packet{Data: miss, InPort: 3}, &v)
	if !v.ToController || ring.Len() != 1 {
		t.Fatalf("miss verdict %v, ring %d", v.String(), ring.Len())
	}
	var rec PuntRecord
	if !ring.Pop(&rec) || rec.InPort != 3 || rec.Reason != PuntMiss || rec.Table != 0 || !bytes.Equal(rec.Frame, miss) {
		t.Fatalf("subscription record %+v", rec)
	}

	// Burst path feeds the same subscription.
	ps := []*Packet{{Data: hit, InPort: 1}, {Data: miss, InPort: 2}}
	vs := make([]Verdict, 2)
	sw.ProcessBurst(ps, vs)
	if ring.Len() != 1 {
		t.Fatalf("burst subscription ring %d", ring.Len())
	}
	ring.Pop(&rec)

	// PacketOut: direct output, flood expansion, and TABLE re-injection.
	if err := sw.PacketOut(1, hit, ActionList{Output(3)}, &v); err != nil || fmt.Sprint(v.OutPorts) != "[3]" {
		t.Fatalf("direct packet-out: %v %v", v.OutPorts, err)
	}
	if err := sw.PacketOut(1, hit, ActionList{Flood()}, &v); err != nil || len(v.OutPorts) != 3 {
		t.Fatalf("flood packet-out: %v %v", v.OutPorts, err)
	}
	if err := sw.PacketOut(4, hit, ActionList{Output(openflow.PortTable)}, &v); err != nil || fmt.Sprint(v.OutPorts) != "[2]" {
		t.Fatalf("table packet-out (hit): %v %v", v.OutPorts, err)
	}
	if err := sw.PacketOut(4, miss, ActionList{Output(openflow.PortTable)}, &v); err != nil {
		t.Fatal(err)
	}
	if !v.ToController || v.PuntReason != PuntMiss {
		t.Fatalf("table packet-out (miss): %+v", v)
	}
	// The re-injected miss also hit the subscription ring.
	if ring.Len() != 1 {
		t.Fatalf("re-injected punt not subscribed: ring %d", ring.Len())
	}
	if err := sw.PacketOut(1, hit, ActionList{DecTTL()}, &v); err == nil {
		t.Fatal("unsupported packet-out action accepted")
	}
	sw.UnsubscribePunts()
	sw.Process(&Packet{Data: miss, InPort: 3}, &v)
	if ring.Len() != 1 {
		t.Fatal("unsubscribed ring still fed")
	}
}

// TestL2LearningUseCaseShape pins the new workload: empty pipeline, miss
// punts to controller, trace covers every host as a source.
func TestL2LearningUseCaseShape(t *testing.T) {
	uc := workload.L2LearningUseCase(32, 4)
	if uc.Pipeline.Miss != openflow.MissController {
		t.Fatal("learning pipeline must punt on miss")
	}
	if uc.Pipeline.NumEntries() != 0 {
		t.Fatal("learning pipeline must start empty")
	}
	trace := uc.Trace(32)
	srcs := map[uint64]bool{}
	var p pkt.Packet
	for i := 0; i < trace.NumFlows(); i++ {
		trace.Next(&p)
		pkt.ParseL2(&p)
		srcs[p.Headers.EthSrc.Uint64()] = true
		if p.Headers.EthSrc == p.Headers.EthDst {
			t.Fatal("self-traffic in learning trace")
		}
	}
	if len(srcs) != 32 {
		t.Fatalf("trace covers %d of 32 hosts as sources", len(srcs))
	}
}

// interpDatapath adapts the reference interpreter (§2.1's "direct datapath")
// to the dpdk substrate's Datapath surface, so the miss_send_len
// differential below can drive the interpreter, compiled, and
// compiled+flowcache paths through the identical switch + slow-path stack.
type interpDatapath struct{ in *openflow.Interpreter }

func (d interpDatapath) Process(p *pkt.Packet, v *openflow.Verdict) { d.in.Process(p, v, nil) }

// missSendLenKey is one delivered PacketIn's truncation-relevant shape.
type missSendLenKey struct {
	inPort   uint32
	reason   uint8
	totalLen uint16
	data     string
}

// TestMissSendLenTruncationAcrossPaths: PacketIn truncation is a property of
// the slow path, not the classifier — every datapath flavour (interpreter,
// compiled, compiled+flowcache) must deliver the same miss_send_len-capped
// Data with the original frame length preserved in TotalLen.
func TestMissSendLenTruncationAcrossPaths(t *testing.T) {
	const missSendLen = 60
	pl := openflow.NewPipeline(4)
	pl.Miss = openflow.MissController
	pl.Table(0).AddFlow(100,
		openflow.NewMatch().Set(openflow.FieldEthDst, 0x42),
		openflow.Apply(openflow.Output(2)))

	frame := func(dst byte, size int) []byte {
		f := make([]byte, size)
		f[5] = dst // dst MAC 00:00:00:00:00:<dst>
		f[11] = 0x99
		for i := 14; i < size; i++ {
			f[i] = byte(i)
		}
		return f
	}
	// A long punted frame (truncated), a short punted frame (sent whole),
	// and a forwarded frame (never punted).
	inputs := [][]byte{frame(0x07, 120), frame(0x08, 40), frame(0x42, 120)}

	run := func(dp dpdk.Datapath, passes int) []missSendLenKey {
		t.Helper()
		// A single RX queue keeps delivery order equal to injection order
		// (Inject RSS-shards across queues otherwise).
		sw := dpdk.NewSwitchWithConfig(dp, dpdk.SwitchConfig{NumPorts: 4, RingSize: 1024, Queues: 1})
		rings, err := sw.ArmPuntRings(256, 0)
		if err != nil {
			t.Fatal(err)
		}
		var seq []missSendLenKey
		svc, err := slowpath.NewService(slowpath.Config{
			Rings:       rings,
			MissSendLen: missSendLen,
			Send: func(pi ofp.PacketIn) error {
				seq = append(seq, missSendLenKey{
					inPort: pi.InPort, reason: pi.Reason,
					totalLen: pi.TotalLen, data: string(pi.Data),
				})
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		port, _ := sw.Port(1)
		for pass := 0; pass < passes; pass++ {
			for _, f := range inputs {
				port.InjectOn(dpdk.AutoQueue, f)
			}
			for sw.PollOnce(nil) > 0 {
			}
			for svc.Poll() > 0 {
			}
		}
		if st := sw.Stats(); st.PuntDrops != 0 {
			t.Fatalf("punt ring overflowed: %+v", st)
		}
		return seq
	}

	interp := run(interpDatapath{openflow.NewInterpreter(pl)}, 2)

	compile := func(flowCache int) *core.Datapath {
		opts := core.DefaultOptions()
		opts.FlowCache = flowCache
		dp, err := core.Compile(pl, opts)
		if err != nil {
			t.Fatal(err)
		}
		return dp
	}
	compiled := run(compile(0), 2)
	cached := run(compile(4096), 2)

	if len(interp) != 4 { // 2 passes × 2 punting frames
		t.Fatalf("interpreter delivered %d PacketIns, want 4", len(interp))
	}
	for i, pi := range interp {
		orig := inputs[i%2] // long, short, long, short
		if int(pi.totalLen) != len(orig) {
			t.Fatalf("PacketIn %d: TotalLen %d, want original length %d", i, pi.totalLen, len(orig))
		}
		wantLen := len(orig)
		if wantLen > missSendLen {
			wantLen = missSendLen
		}
		if len(pi.data) != wantLen || pi.data != string(orig[:wantLen]) {
			t.Fatalf("PacketIn %d: data is not the %d-byte frame prefix (got %d bytes)", i, wantLen, len(pi.data))
		}
	}
	for name, seq := range map[string][]missSendLenKey{"compiled": compiled, "flowcache": cached} {
		if len(seq) != len(interp) {
			t.Fatalf("%s delivered %d PacketIns, interpreter %d", name, len(seq), len(interp))
		}
		for i := range seq {
			if seq[i] != interp[i] {
				t.Fatalf("%s PacketIn %d differs from interpreter:\n  %+v\n  %+v", name, i, seq[i], interp[i])
			}
		}
	}
}
