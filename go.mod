module eswitch

go 1.23
