module eswitch

go 1.24
