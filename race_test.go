//go:build race

package eswitch

// raceEnabled reports that the race detector is instrumenting this build;
// allocation assertions are skipped because the detector itself allocates.
const raceEnabled = true
